"""Walk-lifecycle tracing: a ring-buffered recorder for the whole pipeline.

The paper's argument is about *ordering* — which pending walk the IOMMU
services next and how long each SIMD instruction's walk-job waits — so
end-of-run aggregates are not enough to explain a scheduler's behaviour.
The :class:`Tracer` records structured span/instant events for every
walk (created → enqueued → scheduled → PWC probe → memory accesses →
completed) and every SIMD instruction job (first-walk issue → last-walk
completion → retire), and exports them as Chrome/Perfetto
``trace_event`` JSON (open in https://ui.perfetto.dev) or as a JSONL
stream for programmatic analysis.

Design rules, in priority order:

1. *Zero overhead when disabled.*  Mirroring the fault injector,
   :func:`build_tracer` returns ``None`` for a ``None`` config, and every
   hardware-model emitter is guarded by ``if tracer is not None`` — the
   untraced hot path is byte-for-byte the pre-observability behaviour
   (the golden-equivalence suite enforces this, and
   ``benchmarks/perf/tracing_overhead.py`` bounds the guard cost).
2. *Tracing never mutates simulation state.*  Emitters only read model
   state and append to the ring; a traced run and an untraced run of the
   same spec produce identical :class:`~repro.stats.metrics.SimulationResult`
   metrics.
3. *Determinism.*  Event timestamps are simulation cycles — never wall
   clock — so identical seeds produce byte-identical JSONL.

Timestamps are emitted in the ``ts`` field as cycles; Chrome interprets
them as microseconds, which merely rescales the timeline.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Union

#: Every recognised event category.
TRACE_CATEGORIES: FrozenSet[str] = frozenset(
    {"walk", "job", "tlb", "pwc", "memory", "cu", "fault", "counter"}
)

#: Default ring capacity: large enough for a full small-machine run,
#: bounded enough that a production-scale sweep cannot exhaust memory.
DEFAULT_RING_SIZE = 65_536

#: Chrome ``trace_event`` process ids — one logical track per hardware
#: domain (threads subdivide: CUs under the GPU, walkers under Walkers).
PID_GPU = 0
PID_IOMMU = 1
PID_WALKERS = 2
PID_MEMORY = 3

_PROCESS_NAMES = {
    PID_GPU: "GPU",
    PID_IOMMU: "IOMMU",
    PID_WALKERS: "Walkers",
    PID_MEMORY: "Memory",
}

#: Event phases the exporter produces (and the validator accepts).
_ALLOWED_PHASES = frozenset({"X", "i", "C", "M"})


@dataclass(frozen=True)
class TraceConfig:
    """Declarative tracing request, picklable so specs cross processes.

    ``categories`` selects which event families are recorded (default:
    all).  An *empty* set yields an inert tracer: the hooks are wired but
    record nothing, and the run's :class:`SimulationResult` is identical
    to an untraced run — the overhead-guard benchmark measures exactly
    this configuration.
    """

    categories: FrozenSet[str] = field(default=TRACE_CATEGORIES)
    ring_size: int = DEFAULT_RING_SIZE
    #: Embed the Chrome event list in ``result.detail["trace"]["events"]``
    #: (tests and small runs); large runs should export to a file instead.
    embed_events: bool = False

    def __post_init__(self) -> None:
        # Tolerate lists/tuples straight from JSON or CLI parsing.
        if not isinstance(self.categories, frozenset):
            object.__setattr__(self, "categories", frozenset(self.categories))
        unknown = self.categories - TRACE_CATEGORIES
        if unknown:
            raise ValueError(
                f"unknown trace categories {sorted(unknown)}; "
                f"one of {sorted(TRACE_CATEGORIES)}"
            )
        if self.ring_size <= 0:
            raise ValueError(f"ring_size must be positive, got {self.ring_size}")


class Tracer:
    """Ring-buffered event recorder threaded through the hardware models.

    Emitters are grouped by pipeline stage; every one appends a
    Chrome-format event dict to the ring and nothing else.  The
    ``cat_*`` booleans are plain attributes so hot paths can skip the
    method call entirely (``if tracer is not None and tracer.cat_memory``).
    """

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        categories = self.config.categories
        self.cat_walk = "walk" in categories
        self.cat_job = "job" in categories
        self.cat_tlb = "tlb" in categories
        self.cat_pwc = "pwc" in categories
        self.cat_memory = "memory" in categories
        self.cat_cu = "cu" in categories
        self.cat_fault = "fault" in categories
        self.cat_counter = "counter" in categories
        self._events: Deque[dict] = deque(maxlen=self.config.ring_size)
        self.events_emitted = 0
        #: instruction_id -> [first_walk_issue, last_walk_complete, walks]
        self._jobs: Dict[int, List[int]] = {}
        #: Transient DRAM-timing receipt ``(service_start, done, bank,
        #: row_hit)`` left by the memory models for the walker that is
        #: synchronously issuing (reservation) or completing (queued
        #: controller) a page-table read.  Consumed within the same call
        #: stack, so it is never checkpointed; it exists so the walker
        #: can split its read spans into bank-queue vs row-access cycles
        #: without the full ``memory`` category flooding the ring.
        self.last_dram_access = None

    @property
    def enabled(self) -> bool:
        """False for the inert (empty-categories) tracer."""
        return bool(self.config.categories)

    @property
    def events_recorded(self) -> int:
        return len(self._events)

    @property
    def events_dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.events_emitted - len(self._events)

    def _emit(self, event: dict) -> None:
        self.events_emitted += 1
        self._events.append(event)

    # ------------------------------------------------------------------
    # Walk lifecycle (IOMMU + walkers)
    # ------------------------------------------------------------------

    def walk_created(self, now: int, vpn: int, instruction_id: int,
                     wavefront_id: int) -> None:
        """A GPU TLB miss arrived at the IOMMU and needs a walk."""
        if not self.cat_walk:
            return
        self._emit({
            "name": "walk_created", "ph": "i", "ts": now,
            "pid": PID_IOMMU, "tid": 0, "cat": "walk", "s": "t",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "wavefront_id": wavefront_id},
        })

    def walk_enqueued(self, now: int, vpn: int, instruction_id: int,
                      estimated_accesses: int) -> None:
        """The walk entered the pending buffer (no walker was idle)."""
        if not self.cat_walk:
            return
        self._emit({
            "name": "walk_enqueued", "ph": "i", "ts": now,
            "pid": PID_IOMMU, "tid": 0, "cat": "walk", "s": "t",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "estimated_accesses": estimated_accesses},
        })

    def walk_scheduled(self, now: int, vpn: int, instruction_id: int,
                       arrival_time: int, walker_id: int,
                       dispatch_seq: int) -> None:
        """The scheduler handed the walk to a walker.

        Emits the buffer-residency span (``queued``: arrival → dispatch)
        so Perfetto shows queueing delay per walk directly.
        """
        if not self.cat_walk:
            return
        self._emit({
            "name": "queued", "ph": "X", "ts": arrival_time,
            "dur": now - arrival_time,
            "pid": PID_IOMMU, "tid": 0, "cat": "walk",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "walker_id": walker_id, "dispatch_seq": dispatch_seq},
        })

    def walk_completed(self, now: int, vpn: int, instruction_id: int,
                       accesses: int) -> None:
        """The IOMMU delivered the walk's translation back to the GPU."""
        if not self.cat_walk:
            return
        self._emit({
            "name": "walk_completed", "ph": "i", "ts": now,
            "pid": PID_IOMMU, "tid": 0, "cat": "walk", "s": "t",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "accesses": accesses},
        })

    def walk_span(self, start: int, end: int, walker_id: int, vpn: int,
                  instruction_id: int, accesses: int) -> None:
        """One walker's service interval for one walk (dispatch → done)."""
        if not self.cat_walk:
            return
        self._emit({
            "name": "walk", "ph": "X", "ts": start, "dur": end - start,
            "pid": PID_WALKERS, "tid": walker_id, "cat": "walk",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "accesses": accesses},
        })

    def walk_read(self, start: int, end: int, walker_id: int, vpn: int,
                  instruction_id: int, level: int, address: int, bank: int,
                  bank_queue: int, row_access: int, fault_pad: int,
                  row_hit: bool) -> None:
        """One page-table read within a walk (issue → data return).

        The span's duration decomposes exactly —
        ``bank_queue + row_access + fault_pad == dur`` — which is the
        per-read piece of the attribution layer's reconciliation
        invariant (:mod:`repro.obs.attrib`).  ``bank`` is -1 when the
        memory model supplied no timing receipt (then the whole span is
        reported as ``row_access``).
        """
        if not self.cat_walk:
            return
        self._emit({
            "name": "walk_read", "ph": "X", "ts": start,
            "dur": end - start,
            "pid": PID_WALKERS, "tid": walker_id, "cat": "walk",
            "args": {"vpn": vpn, "instruction_id": instruction_id,
                     "level": level, "address": address, "bank": bank,
                     "bank_queue": bank_queue, "row_access": row_access,
                     "fault_pad": fault_pad, "row_hit": row_hit},
        })

    # ------------------------------------------------------------------
    # Instruction jobs (GPU wavefronts)
    # ------------------------------------------------------------------

    def job_walk_issue(self, instruction_id: int, now: int) -> None:
        """One of the instruction's translation requests left for the IOMMU."""
        if not self.cat_job:
            return
        job = self._jobs.get(instruction_id)
        if job is None:
            self._jobs[instruction_id] = [now, -1, 1]
        else:
            job[2] += 1

    def job_walk_complete(self, instruction_id: int, now: int) -> None:
        """One of the instruction's IOMMU walks delivered its translation."""
        if not self.cat_job:
            return
        job = self._jobs.get(instruction_id)
        if job is not None and now > job[1]:
            job[1] = now

    def job_retired(self, now: int, cu_id: int, instruction_id: int,
                    wavefront_id: int, issue_time: int, walk_accesses: int,
                    walk_requests: int, num_pages: int) -> None:
        """The SIMD instruction retired: emit its end-to-end job span.

        The span covers issue → retire; args carry the walk-job window
        (first walk issued / last walk completed) and the instruction's
        total page-table accesses — enough to rebuild the paper's Fig 3
        buckets straight from a trace.
        """
        if not self.cat_job:
            return
        window = self._jobs.pop(instruction_id, None)
        args = {
            "instruction_id": instruction_id,
            "wavefront_id": wavefront_id,
            "walk_accesses": walk_accesses,
            "walk_requests": walk_requests,
            "num_pages": num_pages,
        }
        if window is not None:
            args["first_walk_issue"] = window[0]
            if window[1] >= 0:
                args["last_walk_complete"] = window[1]
        self._emit({
            "name": "job", "ph": "X", "ts": issue_time,
            "dur": now - issue_time,
            "pid": PID_GPU, "tid": cu_id, "cat": "job", "args": args,
        })

    def cu_stall(self, cu_id: int, start: int, end: int) -> None:
        """A closed interval in which the CU had no runnable wavefront."""
        if not self.cat_cu:
            return
        self._emit({
            "name": "stall", "ph": "X", "ts": start, "dur": end - start,
            "pid": PID_GPU, "tid": cu_id, "cat": "cu", "args": {},
        })

    # ------------------------------------------------------------------
    # Caches (TLBs + PWC)
    # ------------------------------------------------------------------

    def tlb_lookup(self, now: int, name: str, vpn: int, hit: bool) -> None:
        if not self.cat_tlb:
            return
        self._emit({
            "name": f"{name}:{'hit' if hit else 'miss'}", "ph": "i",
            "ts": now, "pid": PID_IOMMU, "tid": 0, "cat": "tlb", "s": "t",
            "args": {"vpn": vpn},
        })

    def pwc_probe(self, now: int, kind: str, vpn: int, level: int,
                  accesses: int) -> None:
        """One PWC consultation: ``kind`` is ``score`` (action 1-a,
        arrival-time estimate) or ``walk`` (action 2-b, walker lookup)."""
        if not self.cat_pwc:
            return
        self._emit({
            "name": f"pwc_{kind}", "ph": "i", "ts": now,
            "pid": PID_IOMMU, "tid": 0, "cat": "pwc", "s": "t",
            "args": {"vpn": vpn, "hit_level": level, "accesses": accesses},
        })

    # ------------------------------------------------------------------
    # Memory (walker page-table reads, DRAM)
    # ------------------------------------------------------------------

    def ptw_read(self, now: int, walker_id: int, address: int) -> None:
        """A walker issued one sequential page-table read."""
        if not self.cat_memory:
            return
        self._emit({
            "name": "ptw_read", "ph": "i", "ts": now,
            "pid": PID_WALKERS, "tid": walker_id, "cat": "memory", "s": "t",
            "args": {"address": address},
        })

    def dram_access(self, start: int, done: int, address: int,
                    queue_delay: int, row_hit: bool, bank: int = -1) -> None:
        """One reservation-model DRAM access (queue delay folded in args)."""
        if not self.cat_memory:
            return
        self._emit({
            "name": "dram", "ph": "X", "ts": start, "dur": done - start,
            "pid": PID_MEMORY, "tid": 0, "cat": "memory",
            "args": {"address": address, "queue_delay": queue_delay,
                     "row_hit": row_hit, "bank": bank},
        })

    def dram_service(self, start: int, done: int, bank: int, address: int,
                     row_hit: bool) -> None:
        """One queued-controller bank *service* interval (dequeue → data).

        Complements :meth:`dram_read_span` (arrival → data): the gap
        between the two spans' starts is exactly the request's bank
        queueing delay, which used to be invisible in exports.
        """
        if not self.cat_memory:
            return
        self._emit({
            "name": "dram_service", "ph": "X", "ts": start,
            "dur": done - start,
            "pid": PID_MEMORY, "tid": 0, "cat": "memory",
            "args": {"address": address, "bank": bank, "row_hit": row_hit},
        })

    def dram_read_span(self, arrival: int, done: int, bank: int,
                       address: int, row_hit: bool) -> None:
        """One queued-controller read, arrival → data return."""
        if not self.cat_memory:
            return
        self._emit({
            "name": "dram_read", "ph": "X", "ts": arrival,
            "dur": done - arrival,
            "pid": PID_MEMORY, "tid": 0, "cat": "memory",
            "args": {"address": address, "bank": bank, "row_hit": row_hit},
        })

    # ------------------------------------------------------------------
    # Faults and counters
    # ------------------------------------------------------------------

    def fault_injected(self, now: int, kind: str, detail: dict) -> None:
        """A fault-injection event fired (instant, global scope)."""
        if not self.cat_fault:
            return
        self._emit({
            "name": f"fault:{kind}", "ph": "i", "ts": now,
            "pid": PID_IOMMU, "tid": 0, "cat": "fault", "s": "g",
            "args": dict(detail),
        })

    def counter(self, now: int, name: str, value: Union[int, float],
                pid: int = PID_IOMMU) -> None:
        """One sample of a counter track (Perfetto draws these as graphs)."""
        if not self.cat_counter:
            return
        self._emit({
            "name": name, "ph": "C", "ts": now, "pid": pid, "tid": 0,
            "cat": "counter", "args": {"value": value},
        })

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "events": list(self._events),
            "events_emitted": self.events_emitted,
            "jobs": {key: list(window) for key, window in self._jobs.items()},
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._events = deque(state["events"], maxlen=self.config.ring_size)
        self.events_emitted = state["events_emitted"]
        self._jobs = {key: list(window) for key, window in state["jobs"].items()}

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------

    def events(self) -> List[dict]:
        """The recorded events, oldest first (a copy)."""
        return list(self._events)

    def tail(self, n: int) -> List[dict]:
        """The last ``n`` recorded events — the flight-recorder window."""
        if n <= 0:
            return []
        events = self._events
        if n >= len(events):
            return list(events)
        return list(events)[-n:]

    def summary(self) -> Dict[str, object]:
        return {
            "categories": sorted(self.config.categories),
            "ring_size": self.config.ring_size,
            "events_emitted": self.events_emitted,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
        }

    def _metadata_events(self) -> List[dict]:
        events: List[dict] = []
        for pid, name in _PROCESS_NAMES.items():
            events.append({
                "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
                "tid": 0, "args": {"name": name},
            })
        # Name the per-CU and per-walker threads actually present.
        threads = sorted(
            {(e["pid"], e["tid"]) for e in self._events if e["tid"] != 0}
        )
        for pid, tid in threads:
            prefix = "cu" if pid == PID_GPU else "walker"
            events.append({
                "name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
                "tid": tid, "args": {"name": f"{prefix}{tid}"},
            })
        return events

    def to_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome/Perfetto ``trace_event`` document."""
        return {
            "traceEvents": self._metadata_events() + list(self._events),
            "displayTimeUnit": "ns",
            "otherData": self.summary(),
        }

    def write_chrome(self, path: Union[str, Path]) -> None:
        document = self.to_chrome()
        validate_chrome_trace(document)
        Path(path).write_text(
            json.dumps(document, sort_keys=True, separators=(",", ":"))
        )

    def to_jsonl(self) -> str:
        """One compact, key-sorted JSON object per recorded event.

        Deterministic: identical seeds and config produce byte-identical
        output (timestamps are cycles; emit order is event order).
        """
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events
        )

    def write_jsonl(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_jsonl())


def build_tracer(config: Optional[TraceConfig]) -> Optional[Tracer]:
    """A tracer for ``config``, or None when tracing was not requested.

    ``None`` in means ``None`` out so every hardware-model hook stays an
    ``is not None`` check and the untraced fast path is unchanged (the
    same contract as :func:`repro.resilience.faults.build_injector`).
    """
    if config is None:
        return None
    return Tracer(config)


def validate_chrome_trace(document: object) -> int:
    """Check ``document`` against the ``trace_event`` JSON shape.

    Returns the number of events checked; raises :class:`ValueError`
    naming every problem found.  Used by the ``trace`` CLI after export
    and by the CI observability job on the artifact it uploads.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document lacks a traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
            elif event.get("name") == "walk_read":
                # Stage-boundary spans must decompose exactly — this is
                # the per-read reconciliation invariant, checked at the
                # export boundary so a broken emitter cannot ship a
                # trace the attribution layer would silently misread.
                args = event.get("args")
                if not isinstance(args, dict):
                    problems.append(f"{where}: walk_read needs args")
                else:
                    missing = [
                        key for key in (
                            "level", "bank", "bank_queue", "row_access",
                            "fault_pad",
                        )
                        if key not in args
                    ]
                    if missing:
                        problems.append(
                            f"{where}: walk_read args missing {missing}"
                        )
                    else:
                        parts = (
                            args["bank_queue"] + args["row_access"]
                            + args["fault_pad"]
                        )
                        if parts != duration:
                            problems.append(
                                f"{where}: walk_read stages sum to "
                                f"{parts}, dur is {duration}"
                            )
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    if problems:
        raise ValueError(
            "invalid Chrome trace:\n  " + "\n  ".join(problems)
        )
    return len(events)
