"""Cross-run aggregation: one deterministic report for a whole sweep.

A single :class:`~repro.stats.metrics.SimulationResult` is a point
estimate; the paper's headline claim (+30% geomean SJF-vs-FCFS on
irregular workloads) only exists as an *aggregate* across a fleet of
runs.  This module folds a sweep's outcomes into that aggregate:

* per-(workload, scheduler) distributions of the headline quantities
  across seeds — count / mean / min / max / stdev, never just a mean;
* speedups versus a baseline scheduler (FCFS by default), paired per
  (workload, seed), reduced to geomean / min / max / stdev per
  scheduler and per workload;
* per-scheduler merged :class:`~repro.obs.metrics.MetricsRegistry`
  dumps (counters summed, gauge watermarks combined, histograms merged
  bucket-by-bucket) when the runs carried live metrics.

The report is **deterministic**: outcomes arrive in spec order whatever
the worker scheduling was, every reduction iterates in sorted key
order, and all wall-clock quantities live under the single ``"wall"``
key — strip it and identical specs+seeds produce identical JSON.

``python -m repro fleet-report`` runs a sweep and renders the report as
JSON and markdown; :func:`fleet_markdown` does the rendering.
"""

from __future__ import annotations

import json
import statistics
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.stats.formatting import format_count, format_number, format_ratio
from repro.stats.metrics import geometric_mean

#: Report identity, mirrored by the loader and the regression gate.
FLEET_REPORT_FORMAT = "repro-fleet-report"
FLEET_REPORT_VERSION = 1

#: Per-run quantities reduced into per-group distributions.
GROUP_FIELDS: Tuple[str, ...] = (
    "total_cycles",
    "stall_cycles",
    "walks_dispatched",
    "walk_memory_accesses",
)


def distribution(values: Sequence[float]) -> Dict[str, float]:
    """count/mean/min/max/stdev of a non-empty sample set.

    ``stdev`` is the sample standard deviation (0.0 for a single
    sample): sweeps usually hold a handful of seeds, and a single-seed
    sweep should read as "no spread measured", not crash.
    """
    if not values:
        raise ValueError("distribution of an empty sample set")
    values = [float(value) for value in values]
    return {
        "count": len(values),
        "mean": round(statistics.fmean(values), 6),
        "min": min(values),
        "max": max(values),
        "stdev": round(
            statistics.stdev(values) if len(values) > 1 else 0.0, 6
        ),
    }


def _spec_seed(spec: Mapping[str, Any]) -> int:
    return int(spec.get("seed", 0))


def fleet_report(
    specs: Sequence[Mapping[str, Any]],
    outcomes: Sequence,
    baseline_scheduler: str = "fcfs",
    telemetry_summary: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Aggregate a sweep's outcomes into the deterministic fleet report.

    ``specs`` and ``outcomes`` are the parallel lists that went into and
    came out of :func:`~repro.experiments.runner.run_many_resilient`.
    Failed or timed-out outcomes are counted and listed but excluded
    from the distributions; speedups pair runs by (workload, seed)
    against ``baseline_scheduler`` and skip pairs whose baseline is
    missing or failed.
    """
    if len(specs) != len(outcomes):
        raise ValueError(
            f"{len(specs)} specs but {len(outcomes)} outcomes"
        )
    rows: List[Dict[str, Any]] = []
    #: (workload, scheduler) -> list of ok results, in spec order.
    groups: Dict[Tuple[str, str], List[Any]] = {}
    #: (workload, seed) -> {scheduler: total_cycles} for speedup pairing.
    cycles_by_case: Dict[Tuple[str, int], Dict[str, int]] = {}
    failures: List[Dict[str, Any]] = []
    retried = 0
    wall_seconds = 0.0

    for spec, outcome in zip(specs, outcomes):
        retried += max(0, outcome.attempts - 1)
        wall_seconds += outcome.elapsed_seconds
        if not outcome.ok:
            failures.append(
                {
                    "index": outcome.index,
                    "spec": outcome.spec_summary,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error_type": outcome.error_type,
                    "error": outcome.error,
                }
            )
            continue
        result = outcome.result
        seed = _spec_seed(spec)
        groups.setdefault((result.workload, result.scheduler), []).append(result)
        cycles_by_case.setdefault((result.workload, seed), {})[
            result.scheduler
        ] = result.total_cycles
        # One tidy row per run.  Beyond the original identity/cycle
        # columns, every quantity a registered figure draws on rides
        # along (stalls, walk work, latency shape, and the sweep-axis
        # columns scale/wavefronts), so the figure pipeline can rebuild
        # the paper's charts from the report alone.
        rows.append(
            {
                "workload": result.workload,
                "scheduler": result.scheduler,
                "seed": seed,
                "attempts": outcome.attempts,
                "scale": float(spec.get("scale", 0.0)),
                "wavefronts": int(spec.get("num_wavefronts", 0)),
                "total_cycles": result.total_cycles,
                "stall_cycles": result.stall_cycles,
                "walks_dispatched": result.walks_dispatched,
                "walk_memory_accesses": result.walk_memory_accesses,
                "interleaved_fraction": round(result.interleaved_fraction, 6),
                "first_walk_latency": round(result.first_walk_latency, 6),
                "last_walk_latency": round(result.last_walk_latency, 6),
                "latency_gap": round(result.latency_gap, 6),
            }
        )

    group_stats: Dict[str, Dict[str, Any]] = {}
    for (workload, scheduler), results in sorted(groups.items()):
        entry: Dict[str, Any] = {"runs": len(results)}
        for field in GROUP_FIELDS:
            entry[field] = distribution(
                [getattr(result, field) for result in results]
            )
        entry["interleaved_fraction"] = distribution(
            [result.interleaved_fraction for result in results]
        )
        group_stats[f"{workload}/{scheduler}"] = entry

    speedups = _speedups_vs_baseline(cycles_by_case, baseline_scheduler)

    metrics_by_scheduler = _merge_metrics(groups)

    statuses = [outcome.status for outcome in outcomes]
    report: Dict[str, Any] = {
        "format": FLEET_REPORT_FORMAT,
        "version": FLEET_REPORT_VERSION,
        "baseline_scheduler": baseline_scheduler,
        "specs": len(specs),
        "ok": statuses.count("ok"),
        "failed": statuses.count("failed"),
        "timeout": statuses.count("timeout"),
        "retried": retried,
        "runs": rows,
        "groups": group_stats,
        "speedup_vs_baseline": speedups,
        "failures": failures,
        # Everything wall-clock lives under this one key: strip it and
        # the report is bit-deterministic for identical specs + seeds.
        "wall": {"sweep_seconds": round(wall_seconds, 3)},
    }
    if telemetry_summary is not None:
        report["telemetry"] = telemetry_summary
    if metrics_by_scheduler:
        report["metrics_by_scheduler"] = metrics_by_scheduler
        # Walk-stage blame summary from the always-on walk.stage.*
        # counters — present whenever the runs carried metrics, no
        # tracing required (see repro.obs.attrib).
        from repro.obs.attrib import stage_summary

        stages = stage_summary(metrics_by_scheduler)
        if stages:
            report["walk_stages_by_scheduler"] = stages
    return report


def _speedups_vs_baseline(
    cycles_by_case: Dict[Tuple[str, int], Dict[str, int]],
    baseline_scheduler: str,
) -> Dict[str, Any]:
    """Per-scheduler speedup distributions, paired per (workload, seed)."""
    #: scheduler -> list of (workload, speedup), in sorted case order.
    #: Pre-seeded with every non-baseline scheduler seen anywhere, so a
    #: scheduler whose runs all failed (or never paired with a healthy
    #: baseline) still gets an explicit "pairs": 0 row instead of
    #: feeding an empty sample list to geometric_mean.
    paired: Dict[str, List[Tuple[str, float]]] = {
        scheduler: []
        for by_scheduler in cycles_by_case.values()
        for scheduler in by_scheduler
        if scheduler != baseline_scheduler
    }
    for (workload, _seed), by_scheduler in sorted(cycles_by_case.items()):
        base = by_scheduler.get(baseline_scheduler)
        if base is None or base <= 0:
            continue
        for scheduler, cycles in sorted(by_scheduler.items()):
            if scheduler == baseline_scheduler or cycles <= 0:
                continue
            paired.setdefault(scheduler, []).append((workload, base / cycles))
    out: Dict[str, Any] = {}
    for scheduler, samples in sorted(paired.items()):
        if not samples:
            out[scheduler] = {"pairs": 0}
            continue
        values = [speedup for _workload, speedup in samples]
        per_workload: Dict[str, float] = {}
        by_workload: Dict[str, List[float]] = {}
        for workload, speedup in samples:
            by_workload.setdefault(workload, []).append(speedup)
        for workload, workload_values in sorted(by_workload.items()):
            per_workload[workload] = round(geometric_mean(workload_values), 6)
        out[scheduler] = {
            "geomean": round(geometric_mean(values), 6),
            "min": round(min(values), 6),
            "max": round(max(values), 6),
            "stdev": round(
                statistics.stdev(values) if len(values) > 1 else 0.0, 6
            ),
            "pairs": len(values),
            "per_workload": per_workload,
        }
    return out


def _merge_metrics(
    groups: Dict[Tuple[str, str], List[Any]]
) -> Dict[str, Dict[str, Any]]:
    """One merged registry dump per scheduler, from runs that kept one.

    Merging happens in sorted (workload, scheduler) then spec order, so
    the merged dump is identical however the sweep's workers were
    scheduled.  The per-run time series is dropped (cycle axes from
    different runs don't compose); counters, watermarks and histograms
    survive.
    """
    merged: Dict[str, MetricsRegistry] = {}
    found = False
    for (workload, scheduler), results in sorted(groups.items()):
        for result in results:
            dump = result.detail.get("metrics")
            if not isinstance(dump, dict):
                continue
            found = True
            registry = merged.setdefault(scheduler, MetricsRegistry())
            registry.merge(MetricsRegistry.from_dict(dump))
    if not found:
        return {}
    out: Dict[str, Dict[str, Any]] = {}
    for scheduler, registry in sorted(merged.items()):
        dump = registry.as_dict()
        dump.pop("series", None)
        out[scheduler] = dump
    return out


def render_fleet_report(report: Dict[str, Any]) -> str:
    """The fleet report as stable, diff-friendly JSON."""
    return json.dumps(report, indent=2, sort_keys=True)


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus wall-clock and delivery-layer fields.

    Two sweeps of identical specs + seeds must agree on this view
    exactly — the fleet determinism tests, the regression gate and the
    sweep-service chaos gate all compare it.  ``telemetry`` is dropped
    alongside ``wall`` because it reflects whether a collector was
    attached, not what was simulated.  ``retried`` and the per-row
    ``attempts`` counts are dropped for the same reason: how many times
    the delivery layer had to re-run a spec (worker killed, lease
    expired, transient failure) is an execution artefact — the computed
    results must not depend on it.
    """
    view = dict(report)
    view.pop("wall", None)
    view.pop("telemetry", None)
    view.pop("retried", None)
    for key in ("runs", "failures"):
        entries = view.get(key)
        if isinstance(entries, list):
            view[key] = [
                {k: v for k, v in entry.items() if k != "attempts"}
                if isinstance(entry, Mapping) else entry
                for entry in entries
            ]
    return view


def fleet_markdown(report: Dict[str, Any]) -> str:
    """Render the fleet report as a self-contained markdown summary.

    Every number goes through :mod:`repro.stats.formatting` — one
    fixed-point formatter for all rendered surfaces — so a tiny geomean
    stdev renders as ``0.000001``, never ``1e-06``, and the markdown is
    byte-identical across platforms for identical reports.
    """
    lines: List[str] = []
    lines.append("# Fleet report")
    lines.append("")
    lines.append(
        f"{report['specs']} spec(s): {report['ok']} ok, "
        f"{report['failed']} failed, {report['timeout']} timed out, "
        f"{report['retried']} retried attempt(s)."
    )
    speedups = report.get("speedup_vs_baseline", {})
    if speedups:
        base = report.get("baseline_scheduler", "fcfs")
        lines.append("")
        lines.append(f"## Speedup vs {base}")
        lines.append("")
        lines.append("| scheduler | geomean | min | max | stdev | pairs |")
        lines.append("|---|---|---|---|---|---|")
        for scheduler, stats in sorted(speedups.items()):
            if not stats.get("pairs"):
                lines.append(f"| {scheduler} | — | — | — | — | 0 |")
                continue
            lines.append(
                f"| {scheduler} | {format_ratio(stats['geomean'])} "
                f"| {format_ratio(stats['min'])} "
                f"| {format_ratio(stats['max'])} "
                f"| {format_number(stats['stdev'])} | {stats['pairs']} |"
            )
        for scheduler, stats in sorted(speedups.items()):
            per_workload = stats.get("per_workload", {})
            if per_workload:
                rendered = ", ".join(
                    f"{workload} {format_ratio(value)}"
                    for workload, value in sorted(per_workload.items())
                )
                lines.append("")
                lines.append(f"Per-workload geomean ({scheduler}): {rendered}")
    groups = report.get("groups", {})
    if groups:
        lines.append("")
        lines.append("## Per-group total cycles")
        lines.append("")
        lines.append("| group | runs | mean | min | max | stdev |")
        lines.append("|---|---|---|---|---|---|")
        for name, entry in sorted(groups.items()):
            cycles = entry["total_cycles"]
            lines.append(
                f"| {name} | {entry['runs']} | {format_count(cycles['mean'])} "
                f"| {format_count(cycles['min'])} "
                f"| {format_count(cycles['max'])} "
                f"| {format_number(cycles['stdev'], thousands=True)} |"
            )
    failures = report.get("failures", [])
    if failures:
        lines.append("")
        lines.append("## Failures")
        lines.append("")
        for failure in failures:
            lines.append(
                f"- `[{failure['index']}]` {failure['status']} after "
                f"{failure['attempts']} attempt(s): {failure['spec']} — "
                f"{failure['error_type']}: {failure['error']}"
            )
    lines.append("")
    return "\n".join(lines)


def sweep_specs(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    seeds: Sequence[int],
    config=None,
    num_wavefronts: int = 8,
    scale: float = 0.1,
    metrics: bool = False,
) -> List[Dict[str, Any]]:
    """The full workload × scheduler × seed spec matrix for a fleet.

    Spec order is the deterministic backbone of the report: workloads
    outermost, then schedulers, then seeds — the same nesting the
    paper's sweep tables use.
    """
    specs: List[Dict[str, Any]] = []
    for workload in workloads:
        for scheduler in schedulers:
            for seed in seeds:
                spec: Dict[str, Any] = {
                    "workload": workload,
                    "config": config,
                    "scheduler": scheduler,
                    "num_wavefronts": num_wavefronts,
                    "scale": scale,
                    "seed": seed,
                }
                if metrics:
                    spec["metrics"] = True
                specs.append(spec)
    return specs
