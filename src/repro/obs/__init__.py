"""repro.obs — observability for the translation pipeline and its fleets.

Six cooperating layers, all zero-overhead when disabled:

* :mod:`repro.obs.trace` — ring-buffered lifecycle tracing with
  Chrome/Perfetto and JSONL export;
* :mod:`repro.obs.metrics` — a live registry of counters/gauges/
  histograms sampled on the simulator monitor hook (mergeable across
  runs for sweep aggregation);
* :mod:`repro.obs.profiler` — wall-clock phase profiling of the
  simulator's own hot paths;
* :mod:`repro.obs.fleet` — live progress telemetry for multi-run
  sweeps (JSONL fleet log, stderr progress, worker heartbeats);
* :mod:`repro.obs.aggregate` — deterministic cross-run aggregation
  into a fleet report (distributions, geomean speedups);
* :mod:`repro.obs.attrib` — walk-latency attribution: per-walk stage
  breakdowns reconciled to end-to-end latency, per-job critical paths,
  aggregated blame reports;
* :mod:`repro.obs.regress` — benchmark regression gating against
  committed ``BENCH_*.json`` baselines.

See ``docs/OBSERVABILITY.md`` for the event schema and how-tos.
"""

from repro.obs.aggregate import (
    deterministic_view,
    distribution,
    fleet_markdown,
    fleet_report,
    render_fleet_report,
    sweep_specs,
)
from repro.obs.attrib import (
    BLAME_CATEGORIES,
    STAGES,
    attribute_walks,
    blame_run_report,
    blame_sweep_report,
    blame_sweep_specs,
    critical_paths,
    iter_trace_events,
    render_blame_report,
    stage_summary,
)
from repro.obs.fleet import DEFAULT_HEARTBEAT_SECONDS, FleetTelemetry
from repro.obs.metrics import (
    DEFAULT_SAMPLE_INTERVAL_EVENTS,
    Counter,
    Gauge,
    MetricsRegistry,
    finalize_standard_metrics,
    install_standard_metrics,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.regress import (
    DEFAULT_METRICS,
    MetricSpec,
    check_benches,
    compare_metric,
    render_check,
)
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    TRACE_CATEGORIES,
    TraceConfig,
    Tracer,
    build_tracer,
    validate_chrome_trace,
)

__all__ = [
    "BLAME_CATEGORIES",
    "Counter",
    "DEFAULT_HEARTBEAT_SECONDS",
    "DEFAULT_METRICS",
    "DEFAULT_RING_SIZE",
    "DEFAULT_SAMPLE_INTERVAL_EVENTS",
    "FleetTelemetry",
    "Gauge",
    "MetricSpec",
    "MetricsRegistry",
    "PhaseProfiler",
    "STAGES",
    "TRACE_CATEGORIES",
    "TraceConfig",
    "Tracer",
    "attribute_walks",
    "blame_run_report",
    "blame_sweep_report",
    "blame_sweep_specs",
    "build_tracer",
    "check_benches",
    "compare_metric",
    "critical_paths",
    "deterministic_view",
    "distribution",
    "finalize_standard_metrics",
    "fleet_markdown",
    "fleet_report",
    "install_standard_metrics",
    "iter_trace_events",
    "render_blame_report",
    "render_check",
    "render_fleet_report",
    "stage_summary",
    "sweep_specs",
    "validate_chrome_trace",
]
