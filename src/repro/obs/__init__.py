"""repro.obs — observability for the translation pipeline.

Three cooperating layers, all zero-overhead when disabled:

* :mod:`repro.obs.trace` — ring-buffered lifecycle tracing with
  Chrome/Perfetto and JSONL export;
* :mod:`repro.obs.metrics` — a live registry of counters/gauges/
  histograms sampled on the simulator monitor hook;
* :mod:`repro.obs.profiler` — wall-clock phase profiling of the
  simulator's own hot paths.

See ``docs/OBSERVABILITY.md`` for the event schema and how-tos.
"""

from repro.obs.metrics import (
    DEFAULT_SAMPLE_INTERVAL_EVENTS,
    Counter,
    Gauge,
    MetricsRegistry,
    finalize_standard_metrics,
    install_standard_metrics,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    TRACE_CATEGORIES,
    TraceConfig,
    Tracer,
    build_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_RING_SIZE",
    "DEFAULT_SAMPLE_INTERVAL_EVENTS",
    "Gauge",
    "MetricsRegistry",
    "PhaseProfiler",
    "TRACE_CATEGORIES",
    "TraceConfig",
    "Tracer",
    "build_tracer",
    "finalize_standard_metrics",
    "install_standard_metrics",
    "validate_chrome_trace",
]
