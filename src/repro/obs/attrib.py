"""Walk-latency attribution and critical-path analysis (the blame layer).

The paper's argument is a latency-attribution claim: irregular
applications stall not because the *average* walk is slow but because
queueing delay and the *last* walk of a SIMD job dominate (Fig. 6's
first-vs-last gap, the Fig. 9–11 stall breakdowns).  The tracer records
the raw lifecycle events; this module turns a trace into an
*explanation*:

* :func:`attribute_walks` — a per-walk **stage breakdown**.  Every
  completed walk's end-to-end latency is decomposed into the stage
  taxonomy below, reconciled so the stages sum *exactly* to the
  end-to-end latency.  This is a hard invariant: any residue lands in
  the explicit ``service_gap`` stage and counts as a reconciliation
  failure instead of being silently absorbed.
* :func:`critical_paths` — a per-job **critical-path analysis**: which
  walk gated each SIMD instruction's retirement, with the first-vs-last
  walk gap itself attributed to the gating walk's stages.
* :func:`blame_run_report` / :func:`blame_sweep_report` — aggregated
  **blame reports** (stacked stage shares, per-level cycles, top-K
  outlier walk digests with their event timelines), deterministic and
  byte-identical across worker counts.

Stage taxonomy (cycles, per walk)::

    enqueue_wait   created -> pending-buffer arrival (FIFO overflow wait;
                   zero unless the pending buffer was full)
    queue_wait     arrival -> walker dispatch (the scheduler's queueing
                   delay, including any scan latency)
    bank_queue     cycles page-table reads waited on a busy DRAM bank
    row_access     cycles of actual DRAM row access (hit or conflict)
    fault_pad      fault-injected DRAM latency padding
    deliver_hold   completion held back by a delayed-completion fault
    service_gap    residue between consecutive reads (always zero for a
                   complete trace; non-zero counts as a reconciliation
                   failure)

Origins: a ``demand`` walk has the full lifecycle; a ``prefetch`` walk
has no ``walk_created`` event, so its breakdown starts at buffer
arrival; a ``coalesced`` request piggybacks on another walk and gets the
host's stage intervals clipped to its own created -> completed window
(the clipping preserves the sum invariant exactly).

Inputs are tracer events — the in-memory ring (``tracer.events()``), an
embedded ``result.detail["trace"]["events"]`` list, a Chrome export, or
a streamed JSONL file — via :func:`iter_trace_events`.  Attribution
needs only the ``walk`` and ``job`` categories (:data:`BLAME_CATEGORIES`),
so the DRAM-heavy ``memory`` category can stay off.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.trace import PID_WALKERS

#: Report identity for the blame document.
BLAME_REPORT_FORMAT = "repro-blame"
BLAME_REPORT_VERSION = 1

#: The stage taxonomy, in pipeline order.  ``service_gap`` is the
#: explicit residue slot: zero for every walk of a complete trace.
STAGES: Tuple[str, ...] = (
    "enqueue_wait",
    "queue_wait",
    "bank_queue",
    "row_access",
    "fault_pad",
    "deliver_hold",
    "service_gap",
)

#: Trace categories attribution needs; everything else is noise here.
BLAME_CATEGORIES = frozenset({"walk", "job"})

#: Default ring size for blame runs: per-walk attribution needs the
#: *whole* lifecycle, so the ring must hold every event (the CLI warns
#: loudly when anything was dropped).
BLAME_RING_SIZE = 1 << 20

#: Outlier digests kept per report.
DEFAULT_TOP_K = 5


@dataclass
class WalkAttribution:
    """One walk request's reconciled latency decomposition."""

    vpn: int
    instruction_id: int
    origin: str  # "demand" | "prefetch" | "coalesced"
    created: Optional[int]
    arrival: int
    dispatch: int
    completed: int
    walker_id: int
    wavefront_id: Optional[int] = None
    accesses: int = 0
    stages: Dict[str, int] = field(default_factory=dict)
    level_cycles: Dict[int, int] = field(default_factory=dict)
    reads: List[dict] = field(default_factory=list)
    #: (start, end, stage) intervals tiling the walk's lifetime — used
    #: to clip coalesced children; dropped from digests.
    intervals: List[Tuple[int, int, str]] = field(default_factory=list)
    reconciled: bool = True

    @property
    def span_start(self) -> int:
        """Where this request's latency clock started."""
        return self.created if self.created is not None else self.arrival

    @property
    def end_to_end(self) -> int:
        return self.completed - self.span_start

    def digest(self) -> Dict[str, Any]:
        """The walk as a plain, JSON-stable dict (no intervals)."""
        return {
            "vpn": self.vpn,
            "instruction_id": self.instruction_id,
            "origin": self.origin,
            "created": self.created,
            "arrival": self.arrival,
            "dispatch": self.dispatch,
            "completed": self.completed,
            "walker_id": self.walker_id,
            "wavefront_id": self.wavefront_id,
            "accesses": self.accesses,
            "end_to_end": self.end_to_end,
            "stages": {stage: self.stages.get(stage, 0) for stage in STAGES},
            "reconciled": self.reconciled,
        }


@dataclass
class AttributionResult:
    """Everything :func:`attribute_walks` learned from one trace."""

    walks: List[WalkAttribution] = field(default_factory=list)
    #: Walks whose lifecycle never closed (wedged walkers, truncated
    #: traces) or events that matched nothing, by reason.
    incomplete: Dict[str, int] = field(default_factory=dict)
    reconciliation_failures: int = 0
    #: First few failure descriptions, for debugging.
    failure_details: List[str] = field(default_factory=list)

    @property
    def checked(self) -> int:
        return len(self.walks)


def iter_trace_events(
    source: Union[str, Path, Sequence[Mapping[str, Any]]],
) -> List[dict]:
    """Tracer events from any supported container, in emit order.

    Accepts an in-memory event list, a Chrome ``trace_event`` JSON file
    (metadata events are filtered out), or a JSONL stream (one event per
    line; blank lines tolerated — a shard log may end mid-write).
    """
    if not isinstance(source, (str, Path)):
        return [dict(event) for event in source]
    path = Path(source)
    text = path.read_text()
    if path.suffix == ".jsonl" or "\n{" in text[:4096] or (
        text.startswith("{") and "\n" in text.strip() and
        not text.lstrip().startswith('{"traceEvents"')
        and '"traceEvents"' not in text[:256]
    ):
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line of a live shard log
        return events
    document = json.loads(text)
    if isinstance(document, dict) and "traceEvents" in document:
        return [
            event for event in document["traceEvents"]
            if event.get("ph") != "M"
        ]
    if isinstance(document, list):
        return [event for event in document if event.get("ph") != "M"]
    raise ValueError(f"{path}: not a Chrome trace or JSONL event stream")


def attribute_walks(
    events: Iterable[Mapping[str, Any]],
) -> AttributionResult:
    """Decompose every completed walk in ``events`` into stages.

    Single forward pass over the (emit-ordered) event stream after a
    cheap counting pre-pass; fully deterministic.  The reconciliation
    invariant — ``sum(stages) == end_to_end`` — holds for every returned
    walk by construction; walks where the tiling left a residue or a
    negative stage keep ``reconciled=False`` and count into
    ``reconciliation_failures``.

    The pre-pass counts ``queued`` (dispatch) events per (vpn, iid).
    The main pass pairs them FIFO with ``walk_created`` records, so the
    first N created records of each key are *reserved* for demand walks
    and must never be resolved as coalesced children.  Without the
    reservation, a buffered request's record could be claimed both by a
    completing same-page host walk and, later, by its own dispatch —
    double-counting the request and breaking the conservation law
    ``created == demand + coalesced``.
    """
    events = list(events)
    out = AttributionResult()
    #: (vpn, iid) -> how many dispatches will consume a created record.
    demand_slots: Dict[Tuple[int, int], int] = {}
    for event in events:
        if event.get("name") == "queued":
            args = event.get("args", {})
            key = (args["vpn"], args["instruction_id"])
            demand_slots[key] = demand_slots.get(key, 0) + 1
    #: (vpn, iid) -> unconsumed walk_created records, oldest first.
    open_created: Dict[Tuple[int, int], Deque[dict]] = {}
    #: vpn -> created records for coalesce resolution (lazily cleaned).
    created_by_vpn: Dict[int, List[dict]] = {}
    #: walker_id -> the walk it is currently servicing.
    active: Dict[int, WalkAttribution] = {}
    #: (vpn, iid) -> walks whose walker span closed, awaiting their
    #: walk_completed instant (adjacent in the stream, same cycle).
    awaiting: Dict[Tuple[int, int], Deque[WalkAttribution]] = {}

    def bump(reason: str) -> None:
        out.incomplete[reason] = out.incomplete.get(reason, 0) + 1

    for event in events:
        name = event.get("name")
        args = event.get("args", {})
        if name == "walk_created":
            record = {
                "ts": event["ts"],
                "vpn": args["vpn"],
                "instruction_id": args["instruction_id"],
                "wavefront_id": args.get("wavefront_id"),
                "taken": False,
            }
            key = (record["vpn"], record["instruction_id"])
            remaining = demand_slots.get(key, 0)
            record["reserved"] = remaining > 0
            if remaining:
                demand_slots[key] = remaining - 1
            open_created.setdefault(key, deque()).append(record)
            created_by_vpn.setdefault(record["vpn"], []).append(record)
        elif name == "queued":
            vpn = args["vpn"]
            iid = args["instruction_id"]
            created: Optional[dict] = None
            queue = open_created.get((vpn, iid))
            if queue:
                created = queue.popleft()
                created["taken"] = True
                if not queue:
                    del open_created[(vpn, iid)]
            walk = WalkAttribution(
                vpn=vpn,
                instruction_id=iid,
                origin="demand" if created is not None else "prefetch",
                created=created["ts"] if created is not None else None,
                arrival=event["ts"],
                dispatch=event["ts"] + event["dur"],
                completed=-1,
                walker_id=args["walker_id"],
                wavefront_id=(
                    created["wavefront_id"] if created is not None else None
                ),
            )
            if walk.walker_id in active:
                bump("walker_reused_before_span")
            active[walk.walker_id] = walk
        elif name == "walk_read":
            walk = active.get(event.get("tid"))
            if walk is None:
                bump("unmatched_walk_read")
                continue
            walk.reads.append({
                "ts": event["ts"],
                "dur": event["dur"],
                "level": args["level"],
                "address": args["address"],
                "bank": args["bank"],
                "bank_queue": args["bank_queue"],
                "row_access": args["row_access"],
                "fault_pad": args["fault_pad"],
                "row_hit": args.get("row_hit", False),
            })
        elif name == "walk" and event.get("pid") == PID_WALKERS:
            walk = active.pop(event.get("tid"), None)
            if walk is None:
                bump("unmatched_walk_span")
                continue
            walk.accesses = args.get("accesses", len(walk.reads))
            awaiting.setdefault(
                (walk.vpn, walk.instruction_id), deque()
            ).append(walk)
        elif name == "walk_completed":
            key = (args["vpn"], args["instruction_id"])
            queue = awaiting.get(key)
            if not queue:
                bump("unmatched_walk_completed")
                continue
            walk = queue.popleft()
            if not queue:
                del awaiting[key]
            walk.completed = event["ts"]
            _finalize(walk, out)
            _resolve_coalesced(walk, created_by_vpn, out)

    for queue in open_created.values():
        for record in queue:
            if not record["taken"]:
                bump("orphan_walk_created")
    for walk in active.values():
        bump("walk_never_completed")
        _ = walk
    for queue in awaiting.values():
        for _walk in queue:
            bump("span_without_completion")
    return out


def _finalize(walk: WalkAttribution, out: AttributionResult) -> None:
    """Compute the walk's stages and interval tiling; verify the sum."""
    base = walk.span_start
    stages = {stage: 0 for stage in STAGES}
    intervals: List[Tuple[int, int, str]] = []

    def add(start: int, end: int, stage: str) -> None:
        if end != start:
            stages[stage] += end - start
            intervals.append((start, end, stage))

    add(base, walk.arrival, "enqueue_wait")
    add(walk.arrival, walk.dispatch, "queue_wait")
    cursor = walk.dispatch
    for read in walk.reads:
        add(cursor, read["ts"], "service_gap")
        edge = read["ts"]
        add(edge, edge + read["bank_queue"], "bank_queue")
        edge += read["bank_queue"]
        add(edge, edge + read["row_access"], "row_access")
        edge += read["row_access"]
        add(edge, edge + read["fault_pad"], "fault_pad")
        cursor = read["ts"] + read["dur"]
        level = read["level"]
        walk.level_cycles[level] = (
            walk.level_cycles.get(level, 0) + read["dur"]
        )
    add(cursor, walk.completed, "deliver_hold")

    walk.stages = stages
    walk.intervals = intervals
    total = sum(stages.values())
    ok = (
        total == walk.end_to_end
        and stages["service_gap"] == 0
        and all(value >= 0 for value in stages.values())
    )
    walk.reconciled = ok
    if not ok:
        out.reconciliation_failures += 1
        if len(out.failure_details) < 8:
            out.failure_details.append(
                f"walk vpn={walk.vpn:#x} iid={walk.instruction_id}: "
                f"stages sum {total} vs end_to_end {walk.end_to_end}, "
                f"service_gap={stages['service_gap']}"
            )
    out.walks.append(walk)


def _resolve_coalesced(
    host: WalkAttribution,
    created_by_vpn: Dict[int, List[dict]],
    out: AttributionResult,
) -> None:
    """Attach orphan same-page requests created during the host's life.

    A request that coalesced onto an in-flight or pending walk left only
    its ``walk_created`` instant; its reply arrived with the host's
    completion.  Its breakdown is the host's stage intervals clipped to
    its own window — exact, because the host's intervals tile its
    lifetime with no residue.
    """
    records = created_by_vpn.get(host.vpn)
    if not records:
        return
    survivors: List[dict] = []
    window_start = host.span_start
    for record in records:
        if record["taken"]:
            continue
        if record["reserved"]:
            # A later dispatch will consume this record as a demand
            # walk; claiming it here would count the request twice.
            survivors.append(record)
            continue
        ts = record["ts"]
        if window_start <= ts <= host.completed:
            record["taken"] = True
            child = WalkAttribution(
                vpn=host.vpn,
                instruction_id=record["instruction_id"],
                origin="coalesced",
                created=ts,
                arrival=max(ts, host.arrival),
                dispatch=max(ts, host.dispatch),
                completed=host.completed,
                walker_id=host.walker_id,
                wavefront_id=record["wavefront_id"],
                accesses=0,
            )
            stages = {stage: 0 for stage in STAGES}
            for start, end, stage in host.intervals:
                clipped = max(start, ts)
                if end > clipped:
                    stages[stage] += end - clipped
            child.stages = stages
            total = sum(stages.values())
            child.reconciled = total == child.end_to_end
            if not child.reconciled:
                out.reconciliation_failures += 1
                if len(out.failure_details) < 8:
                    out.failure_details.append(
                        f"coalesced vpn={child.vpn:#x} "
                        f"iid={child.instruction_id}: clipped sum {total} "
                        f"vs end_to_end {child.end_to_end}"
                    )
            out.walks.append(child)
        else:
            survivors.append(record)
    if survivors:
        created_by_vpn[host.vpn] = survivors
    else:
        del created_by_vpn[host.vpn]


# ----------------------------------------------------------------------
# Critical paths
# ----------------------------------------------------------------------


def critical_paths(
    events: Iterable[Mapping[str, Any]],
    walks: Sequence[WalkAttribution],
) -> Dict[str, Any]:
    """Per-job critical-path analysis: which walk gated retirement.

    For every retired SIMD instruction that needed at least one walk,
    identifies the *gating* walk (latest completion) and decomposes the
    first-vs-last completion gap — the paper's Fig. 6 quantity — into
    ``arrival_skew`` (the gating walk did not exist yet when the first
    walk finished) plus the gating walk's stages clipped to the gap
    window.  The decomposition is exact: the pieces sum to the gap.
    """
    by_instruction: Dict[int, List[WalkAttribution]] = {}
    for walk in walks:
        if walk.origin == "prefetch":
            continue
        by_instruction.setdefault(walk.instruction_id, []).append(walk)

    jobs = []
    gap_stage_cycles = {stage: 0 for stage in STAGES}
    arrival_skew_cycles = 0
    total_gap = 0
    multi = 0
    for event in events:
        if event.get("name") != "job":
            continue
        args = event.get("args", {})
        iid = args.get("instruction_id")
        group = by_instruction.get(iid)
        if not group:
            continue
        completions = [walk.completed for walk in group]
        first = min(completions)
        last = max(completions)
        gating = max(
            group,
            key=lambda walk: (
                walk.completed, -walk.span_start, -walk.vpn,
            ),
        )
        gap = last - first
        total_gap += gap
        stages = {stage: 0 for stage in STAGES}
        skew = 0
        if gap > 0:
            multi += 1
            skew = max(0, gating.span_start - first)
            arrival_skew_cycles += skew
            clip_from = max(gating.span_start, first)
            if gating.intervals:
                for start, end, stage in gating.intervals:
                    clipped = max(start, clip_from)
                    if end > clipped:
                        stages[stage] += end - clipped
            else:  # coalesced gating walk: clip the flat stage totals
                for stage in STAGES:
                    stages[stage] = gating.stages.get(stage, 0)
                overshoot = sum(stages.values()) - (last - clip_from)
                stages["queue_wait"] -= overshoot
            for stage in STAGES:
                gap_stage_cycles[stage] += stages[stage]
        jobs.append({
            "instruction_id": iid,
            "walks": len(group),
            "retire": event["ts"] + event["dur"],
            "first_walk_complete": first,
            "last_walk_complete": last,
            "gap": gap,
            "arrival_skew": skew,
            "gap_stages": stages,
            "gating_walk": {
                "vpn": gating.vpn,
                "origin": gating.origin,
                "end_to_end": gating.end_to_end,
            },
            "reconciled": skew + sum(stages.values()) == gap,
        })

    jobs.sort(key=lambda job: job["instruction_id"])
    gap_total_parts = arrival_skew_cycles + sum(gap_stage_cycles.values())
    return {
        "jobs_analyzed": len(jobs),
        "multi_walk_jobs": multi,
        "total_gap_cycles": total_gap,
        "mean_gap": round(total_gap / len(jobs), 6) if jobs else 0.0,
        "arrival_skew_cycles": arrival_skew_cycles,
        "gap_stage_cycles": gap_stage_cycles,
        "gap_reconciled": gap_total_parts == total_gap,
        "top_gaps": [
            job for job in sorted(
                jobs,
                key=lambda job: (-job["gap"], job["instruction_id"]),
            )[:DEFAULT_TOP_K]
        ],
    }


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


def _shares(cycles: Mapping[str, int]) -> Dict[str, float]:
    total = sum(cycles.values())
    if total <= 0:
        return {stage: 0.0 for stage in cycles}
    return {
        stage: round(value / total, 6) for stage, value in cycles.items()
    }


def blame_run_report(
    events: Iterable[Mapping[str, Any]],
    top_k: int = DEFAULT_TOP_K,
) -> Dict[str, Any]:
    """One run's full blame document (attribution + critical paths)."""
    events = list(events)
    attribution = attribute_walks(events)
    walks = attribution.walks
    stage_cycles = {stage: 0 for stage in STAGES}
    level_cycles: Dict[int, int] = {}
    origins: Dict[str, int] = {}
    latency_total = 0
    latency_max = 0
    for walk in walks:
        origins[walk.origin] = origins.get(walk.origin, 0) + 1
        latency_total += walk.end_to_end
        latency_max = max(latency_max, walk.end_to_end)
        for stage in STAGES:
            stage_cycles[stage] += walk.stages.get(stage, 0)
        for level, cycles in walk.level_cycles.items():
            level_cycles[level] = level_cycles.get(level, 0) + cycles
    outliers = sorted(
        walks,
        key=lambda walk: (
            -walk.end_to_end, walk.vpn, walk.instruction_id,
            walk.span_start,
        ),
    )[:top_k]
    return {
        "walks": {
            "attributed": len(walks),
            "origins": dict(sorted(origins.items())),
            "incomplete": dict(sorted(attribution.incomplete.items())),
        },
        "reconciliation": {
            "checked": attribution.checked,
            "failures": attribution.reconciliation_failures,
            "details": list(attribution.failure_details),
        },
        "latency": {
            "total_cycles": latency_total,
            "mean": (
                round(latency_total / len(walks), 6) if walks else 0.0
            ),
            "max": latency_max,
        },
        "stage_cycles": stage_cycles,
        "stage_shares": _shares(stage_cycles),
        "level_cycles": {
            f"level{level}": cycles
            for level, cycles in sorted(level_cycles.items())
        },
        "critical_path": critical_paths(events, walks),
        "outliers": [walk.digest() for walk in outliers],
    }


def blame_sweep_report(
    specs: Sequence[Mapping[str, Any]],
    results: Sequence[Any],
    top_k: int = DEFAULT_TOP_K,
) -> Dict[str, Any]:
    """The blame document for a whole sweep, merged deterministically.

    ``results`` must carry embedded trace events
    (``TraceConfig(embed_events=True)``).  Runs are keyed and sorted by
    (workload, scheduler, seed) and per-scheduler aggregates iterate in
    sorted order, so the document is byte-identical however many worker
    processes executed the sweep — the same convention as
    :func:`repro.obs.aggregate.fleet_report`.
    """
    runs: List[Dict[str, Any]] = []
    dropped_events = 0
    for spec, result in zip(specs, results):
        trace_detail = result.detail.get("trace", {})
        events = trace_detail.get("events")
        if events is None:
            raise ValueError(
                "blame_sweep_report needs embedded trace events; run specs "
                "with TraceConfig(embed_events=True)"
            )
        dropped_events += trace_detail.get("events_dropped", 0)
        report = blame_run_report(events, top_k=top_k)
        runs.append({
            "workload": result.workload,
            "scheduler": result.scheduler,
            "seed": int(spec.get("seed", 0)),
            "total_cycles": result.total_cycles,
            **report,
        })
    runs.sort(key=lambda run: (
        run["workload"], run["scheduler"], run["seed"]
    ))

    by_scheduler: Dict[str, Dict[str, Any]] = {}
    for run in runs:
        entry = by_scheduler.setdefault(run["scheduler"], {
            "runs": 0,
            "walks_attributed": 0,
            "reconciliation_failures": 0,
            "stage_cycles": {stage: 0 for stage in STAGES},
            "gap_cycles": 0,
            "multi_walk_jobs": 0,
        })
        entry["runs"] += 1
        entry["walks_attributed"] += run["walks"]["attributed"]
        entry["reconciliation_failures"] += (
            run["reconciliation"]["failures"]
        )
        for stage in STAGES:
            entry["stage_cycles"][stage] += run["stage_cycles"][stage]
        entry["gap_cycles"] += run["critical_path"]["total_gap_cycles"]
        entry["multi_walk_jobs"] += run["critical_path"]["multi_walk_jobs"]
    for entry in by_scheduler.values():
        entry["stage_shares"] = _shares(entry["stage_cycles"])

    return {
        "format": BLAME_REPORT_FORMAT,
        "version": BLAME_REPORT_VERSION,
        "runs": runs,
        "by_scheduler": {
            scheduler: by_scheduler[scheduler]
            for scheduler in sorted(by_scheduler)
        },
        "reconciliation": {
            "checked": sum(r["reconciliation"]["checked"] for r in runs),
            "failures": sum(r["reconciliation"]["failures"] for r in runs),
        },
        "events_dropped": dropped_events,
    }


def render_blame_report(report: Dict[str, Any]) -> str:
    """The blame document as stable, diff-friendly JSON."""
    return json.dumps(report, indent=2, sort_keys=True)


def blame_sweep_specs(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    seeds: Sequence[int],
    config: Optional[Any] = None,
    num_wavefronts: int = 8,
    scale: float = 0.1,
    ring_size: int = BLAME_RING_SIZE,
) -> List[Dict[str, Any]]:
    """``run_many`` specs for a blame sweep: every run traced with the
    walk+job categories embedded, so :func:`blame_sweep_report` can
    attribute it.  Ordering (workloads → schedulers → seeds) matches
    :func:`repro.obs.aggregate.sweep_specs`."""
    from repro.obs.trace import TraceConfig

    trace = TraceConfig(
        categories=BLAME_CATEGORIES,
        ring_size=ring_size,
        embed_events=True,
    )
    specs: List[Dict[str, Any]] = []
    for workload in workloads:
        for scheduler in schedulers:
            for seed in seeds:
                spec: Dict[str, Any] = {
                    "workload": workload,
                    "scheduler": scheduler,
                    "seed": seed,
                    "num_wavefronts": num_wavefronts,
                    "scale": scale,
                    "trace": trace,
                    "metrics": True,
                }
                if config is not None:
                    spec["config"] = config
                specs.append(spec)
    return specs


# ----------------------------------------------------------------------
# Metrics-counter summaries (no tracing required)
# ----------------------------------------------------------------------

#: metrics counter name -> stage label for :func:`stage_summary`.
STAGE_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("walk.stage.enqueue_wait_cycles", "enqueue_wait"),
    ("walk.stage.queue_wait_cycles", "queue_wait"),
    ("walk.stage.dram_bank_queue_cycles", "bank_queue"),
    ("walk.stage.dram_row_cycles", "row_access"),
    ("walk.stage.fault_pad_cycles", "fault_pad"),
    ("walk.stage.deliver_hold_cycles", "deliver_hold"),
)


def stage_summary(
    metrics_by_scheduler: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Per-scheduler stage totals and shares from merged metrics dumps.

    This is the tracing-free path: the engine keeps the
    ``walk.stage.*`` counters always-on, so a metrics-only campaign can
    still answer "where did walk cycles go" — just in aggregate rather
    than per walk.  Returns ``{}`` when no dump carries the counters.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for scheduler in sorted(metrics_by_scheduler):
        counters = metrics_by_scheduler[scheduler].get("counters", {})
        cycles = {
            stage: int(counters[name])
            for name, stage in STAGE_COUNTERS
            if name in counters
        }
        if not cycles or not any(cycles.values()):
            continue
        walks = int(counters.get("iommu.walks_completed", 0))
        entry: Dict[str, Any] = {
            "stage_cycles": cycles,
            "stage_shares": _shares(cycles),
        }
        if walks:
            entry["per_walk"] = {
                stage: round(value / walks, 6)
                for stage, value in cycles.items()
            }
        out[scheduler] = entry
    return out
