"""Wall-clock phase profiling for the simulator's own hot paths.

``BENCH_hotpath.json`` reports end-to-end events/sec; this profiler
breaks a run's wall time into the phases an optimisation would target:

``scheduler_select``
    Time inside ``WalkScheduler.select`` calls (the paper's policies).

``memory_model``
    Time inside the memory subsystem's two entry points (cache lookups,
    DRAM timing, controller queues).

``event_loop_other``
    Everything else — the event queue, wavefront state machines, TLBs —
    derived as total minus the instrumented phases.

The profiler uses :func:`time.perf_counter` and therefore must never
feed the tracer or any simulation decision; it only ever lands in
``SimulationResult.detail["profile"]``.  Like the tracer, it is ``None``
when disabled, so the uninstrumented hot path is unchanged.
"""

from __future__ import annotations

from typing import Dict


class PhaseProfiler:
    """Accumulates wall-clock seconds (and call counts) per named phase."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Credit ``seconds`` of wall time to ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def report(self, total_wall_seconds: float) -> Dict[str, object]:
        """The phase breakdown against an externally measured total."""
        instrumented = sum(self.seconds.values())
        phases = {
            phase: {
                "seconds": seconds,
                "calls": self.calls[phase],
                "fraction": (
                    seconds / total_wall_seconds if total_wall_seconds > 0 else 0.0
                ),
            }
            for phase, seconds in sorted(self.seconds.items())
        }
        other = max(0.0, total_wall_seconds - instrumented)
        phases["event_loop_other"] = {
            "seconds": other,
            "calls": 0,
            "fraction": other / total_wall_seconds if total_wall_seconds > 0 else 0.0,
        }
        return {"total_wall_seconds": total_wall_seconds, "phases": phases}
