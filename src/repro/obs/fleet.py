"""Fleet telemetry: live progress for multi-run sweep execution.

A single simulation has deep observability (tracing, metrics,
profiling); the unit of work in practice is the *fleet* — dozens of
scheduler×workload specs fanned across worker processes by
:func:`~repro.experiments.runner.run_many_resilient`.  This module
watches that layer: which spec is running where, which one retried or
timed out, how fast each worker is moving — without touching the in-sim
hot path (events are per-spec and per-heartbeat, never per-cycle).

:class:`FleetTelemetry` is a thread-safe collector the sweep executors
feed structured events into.  It can simultaneously

* keep every event in memory (:meth:`events`),
* append each event as one JSON line to a *fleet log* (``log_path``),
* render a line-oriented progress view to stderr (``progress=True``).

Event stream (``"event"`` key of every record)::

    sweep_started    total specs, worker count, checkpointed count
    spec_started     index, spec, attempt
    heartbeat        index, attempt, worker pid, elapsed (process path)
    spec_retry       index, attempt that failed, why, backoff
    spec_timeout     index, attempt, wall-clock budget
    spec_finished    index, final status, attempts, events/sec
    sweep_finished   per-status totals, retried count

Every record also carries ``"t"``, a wall-clock UNIX timestamp.  Wall
clock makes individual log lines non-reproducible by design — the
*deterministic* view of a sweep is the aggregated report built by
:mod:`repro.obs.aggregate`, which excludes wall-clock fields.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO

#: Default cadence of per-worker heartbeats (wall-clock seconds).  A
#: worker that stays silent for a few multiples of this is either dead
#: (the executor sees EOF) or stuck (the deadline will catch it).
DEFAULT_HEARTBEAT_SECONDS = 5.0

#: Ordered RunOutcome statuses for the sweep_finished summary.
_SUMMARY_STATUSES = ("ok", "failed", "timeout")


class FleetTelemetry:
    """Thread-safe collector for sweep-level progress events.

    Executors call the typed emitters (:meth:`spec_started`,
    :meth:`spec_finished`, ...); each call appends one structured record
    and, when configured, one JSONL line and one progress line.  The
    collector never raises into the sweep: a full disk or closed stream
    degrades telemetry, not the run.
    """

    def __init__(
        self,
        log_path: Optional[str] = None,
        progress: bool = False,
        stream: Optional[TextIO] = None,
        heartbeat_seconds: Optional[float] = DEFAULT_HEARTBEAT_SECONDS,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        if heartbeat_seconds is not None and heartbeat_seconds <= 0:
            raise ValueError(
                f"heartbeat_seconds must be positive or None, "
                f"got {heartbeat_seconds}"
            )
        self.heartbeat_seconds = heartbeat_seconds
        #: Static fields stamped onto every record — the sweep service
        #: uses this to tag each per-shard log with its shard id, worker
        #: and claim attempt, so merged logs stay attributable.
        self.context = dict(context or {})
        self.progress = progress
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._log: Optional[TextIO] = None
        self._log_path = log_path
        self._total = 0
        self._done = 0
        self._counts: Dict[str, int] = {status: 0 for status in _SUMMARY_STATUSES}
        self._retries = 0
        self._heartbeats = 0
        if log_path:
            self._log = open(log_path, "w", encoding="utf-8")

    # -- core emission --------------------------------------------------

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one structured event (adds ``context`` and wall ``t``)."""
        record: Dict[str, Any] = {
            "event": event, **self.context, **fields, "t": time.time(),
        }
        with self._lock:
            self._events.append(record)
            if self._log is not None:
                try:
                    self._log.write(json.dumps(record, sort_keys=True) + "\n")
                    self._log.flush()
                except (OSError, ValueError):
                    self._log = None  # telemetry degrades, the sweep survives
        return record

    def _say(self, line: str) -> None:
        if not self.progress:
            return
        try:
            print(line, file=self._stream, flush=True)
        except (OSError, ValueError):
            self.progress = False

    # -- typed emitters (called by the sweep executors) -----------------

    def sweep_started(
        self, total: int, jobs: int, checkpointed: int = 0
    ) -> None:
        with self._lock:
            self._total = total
            self._done = checkpointed
        self.emit(
            "sweep_started", total=total, jobs=jobs, checkpointed=checkpointed
        )
        self._say(
            f"fleet: {total} spec(s), {jobs} worker(s)"
            + (f", {checkpointed} from checkpoint" if checkpointed else "")
        )

    def spec_started(self, index: int, spec: str, attempt: int) -> None:
        self.emit("spec_started", index=index, spec=spec, attempt=attempt)
        retry = f" (attempt {attempt})" if attempt > 1 else ""
        self._say(f"fleet: [{index}] start{retry}: {spec}")

    def heartbeat(
        self, index: int, attempt: int, payload: Dict[str, Any]
    ) -> None:
        """A worker-process liveness ping relayed off the result pipe."""
        with self._lock:
            self._heartbeats += 1
        self.emit("heartbeat", index=index, attempt=attempt, **payload)
        elapsed = payload.get("elapsed_seconds")
        pid = payload.get("pid")
        self._say(
            f"fleet: [{index}] running (pid {pid}, {elapsed:.1f}s)"
            if elapsed is not None
            else f"fleet: [{index}] running (pid {pid})"
        )

    def spec_retry(
        self,
        index: int,
        spec: str,
        attempt: int,
        status: str,
        error_type: Optional[str],
        error: Optional[str],
        backoff_seconds: float,
    ) -> None:
        """Attempt ``attempt`` failed but the retry budget covers it."""
        with self._lock:
            self._retries += 1
        self.emit(
            "spec_retry",
            index=index,
            spec=spec,
            attempt=attempt,
            status=status,
            error_type=error_type,
            error=error,
            backoff_seconds=backoff_seconds,
        )
        self._say(
            f"fleet: [{index}] {status} on attempt {attempt} "
            f"({error_type}); retrying in {backoff_seconds:.2f}s"
        )

    def spec_timeout(
        self, index: int, spec: str, attempt: int, timeout_seconds: float
    ) -> None:
        self.emit(
            "spec_timeout",
            index=index,
            spec=spec,
            attempt=attempt,
            timeout_seconds=timeout_seconds,
        )
        self._say(
            f"fleet: [{index}] attempt {attempt} exceeded "
            f"{timeout_seconds:g}s budget"
        )

    def spec_finished(self, outcome) -> None:
        """A spec reached its final :class:`RunOutcome` (any status)."""
        with self._lock:
            self._done += 1
            self._counts[outcome.status] = self._counts.get(outcome.status, 0) + 1
            done, total = self._done, self._total
        fields: Dict[str, Any] = {
            "index": outcome.index,
            "spec": outcome.spec_summary,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "elapsed_seconds": outcome.elapsed_seconds,
            "from_checkpoint": outcome.from_checkpoint,
        }
        label = outcome.status
        if outcome.ok and outcome.result is not None:
            fields["total_cycles"] = outcome.result.total_cycles
            engine = outcome.result.detail.get("engine")
            if isinstance(engine, dict):
                fields["events_per_sec"] = round(
                    engine.get("events_per_sec", 0.0)
                )
            if outcome.from_checkpoint:
                label = "ok (checkpoint)"
        elif not outcome.ok:
            fields["error_type"] = outcome.error_type
            fields["error"] = outcome.error
        self.emit("spec_finished", **fields)
        rate = fields.get("events_per_sec")
        tail = f" {rate:,d} ev/s" if isinstance(rate, int) and rate else ""
        self._say(
            f"fleet: [{outcome.index}] {label} "
            f"({done}/{total}, {outcome.attempts} attempt(s),"
            f" {outcome.elapsed_seconds:.1f}s{tail}): {outcome.spec_summary}"
        )

    def sweep_finished(self) -> Dict[str, Any]:
        """Close out the sweep; returns the deterministic summary."""
        summary = self.summary()
        self.emit("sweep_finished", **summary)
        self._say(
            "fleet: done — "
            + ", ".join(f"{summary[s]} {s}" for s in _SUMMARY_STATUSES)
            + f", {summary['retried']} retried attempt(s)"
        )
        return summary

    # -- inspection -----------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot of every recorded event (copies, caller-owned)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def summary(self) -> Dict[str, Any]:
        """Per-status totals — deterministic (no wall-clock fields)."""
        with self._lock:
            summary: Dict[str, Any] = {"total": self._total}
            for status in _SUMMARY_STATUSES:
                summary[status] = self._counts.get(status, 0)
            summary["retried"] = self._retries
            return summary

    def close(self) -> None:
        with self._lock:
            if self._log is not None:
                try:
                    self._log.close()
                finally:
                    self._log = None

    def __enter__(self) -> "FleetTelemetry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
