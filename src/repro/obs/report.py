"""Self-contained HTML campaign report.

One page per campaign, built from the same deterministic inputs as the
figure registry: every registered figure (Vega-Lite spec with its data
values inlined, plus an accessible data table), the bench-gate verdicts
from :mod:`repro.obs.regress`, the retry/timeout audit from the
campaign manifest, and the failure list.  The page is a single file
with zero required network access — the tables and summaries *are* the
report; the inlined specs progressively enhance into charts when a
Vega-Lite runtime is reachable (the standard CDN script tags are
included but optional).

Determinism contract: the bytes are a function of the campaign data
alone.  No timestamps, no hostnames, no wall-clock numbers; every
iteration is sorted; all numbers render through
:mod:`repro.stats.formatting`.  ``jobs=1`` and ``jobs=16`` clean runs
of the same specs produce the identical page, which the figure
determinism tests and the CI figures job both diff byte-for-byte.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.figures import CampaignData, Figure, build_figures
from repro.stats.formatting import format_count, format_number, format_ratio

REPORT_TITLE = "Page-walk scheduling — campaign report"

#: Optional chart runtime.  The page never *requires* these: offline,
#: each figure's table and description stand alone.
_VEGA_CDN = (
    '<script src="https://cdn.jsdelivr.net/npm/vega@5"></script>\n'
    '<script src="https://cdn.jsdelivr.net/npm/vega-lite@5"></script>\n'
    '<script src="https://cdn.jsdelivr.net/npm/vega-embed@6"></script>'
)

#: Light/dark surfaces and ink from the validated reference palette;
#: the figure specs themselves pin the light theme, the page chrome
#: follows the reader's preference.
_CSS = """
:root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --line: #e8e7e3;
  --ok: #008300;
  --bad: #e34948;
  --warn: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #f2f1ef;
    --ink-2: #b4b2ad;
    --line: #3a3936;
  }
}
body {
  background: var(--surface);
  color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
  margin: 2rem auto;
  max-width: 64rem;
  padding: 0 1rem;
}
h1, h2, h3 { line-height: 1.2; }
h2 { border-top: 1px solid var(--line); margin-top: 2.5rem; padding-top: 1.5rem; }
p.desc { color: var(--ink-2); max-width: 48rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td {
  border-bottom: 1px solid var(--line);
  padding: 0.3rem 0.9rem 0.3rem 0;
  text-align: left;
}
td.num, th.num { text-align: right; }
.status-ok { color: var(--ok); }
.status-bad { color: var(--bad); }
.status-warn { color: var(--warn); }
.vis { margin: 1rem 0; min-height: 1rem; }
details { margin: 0.5rem 0 1.5rem; }
details summary { color: var(--ink-2); cursor: pointer; }
code { background: var(--line); border-radius: 3px; padding: 0 0.25rem; }
.skip { color: var(--ink-2); font-style: italic; }
"""

_EMBED_JS = """
if (window.vegaEmbed) {
  document.querySelectorAll("script.vl-spec").forEach(function (node) {
    var target = document.getElementById(node.dataset.target);
    if (target) {
      vegaEmbed(target, JSON.parse(node.textContent), {actions: false});
    }
  });
}
"""


def _status_class(status: str) -> str:
    if status in ("ok", "improved"):
        return "status-ok"
    if status in ("regression", "failed", "timeout"):
        return "status-bad"
    return "status-warn"


def _cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return format_number(value)
    return html.escape(str(value))


def _table(
    columns: Sequence[str],
    rows: Sequence[Mapping[str, Any]],
    numeric: Sequence[str] = (),
    status_column: Optional[str] = None,
) -> str:
    head = "".join(
        "<th{}>{}</th>".format(
            ' class="num"' if column in numeric else "",
            html.escape(column),
        )
        for column in columns
    )
    body: List[str] = []
    for row in rows:
        cells: List[str] = []
        for column in columns:
            classes = []
            if column in numeric:
                classes.append("num")
            if status_column == column:
                classes.append(_status_class(str(row.get(column))))
            attr = f' class="{" ".join(classes)}"' if classes else ""
            cells.append(f"<td{attr}>{_cell(row.get(column))}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _summary_section(
    reports: Sequence[Tuple[str, Mapping[str, Any]]]
) -> str:
    rows = []
    for label, report in reports:
        rows.append(
            {
                "campaign": label,
                "baseline": report.get("baseline_scheduler"),
                "specs": format_count(report.get("specs")),
                "ok": format_count(report.get("ok")),
                "failed": format_count(
                    (report.get("failed") or 0) + (report.get("timeout") or 0)
                ),
                "retried": format_count(report.get("retried")),
            }
        )
    return "<h2>Campaign summary</h2>" + _table(
        ["campaign", "baseline", "specs", "ok", "failed", "retried"],
        rows,
        numeric=("specs", "ok", "failed", "retried"),
    )


def _figure_section(figure: Figure) -> str:
    spec = dict(figure.spec)
    # The emitted .vl.json references its sibling CSV; the HTML page
    # must stand alone, so the values ride inline instead.
    spec["data"] = {"values": figure.rows}
    spec_json = json.dumps(spec, indent=None, sort_keys=True)
    table = _table(
        figure.columns,
        figure.rows,
        numeric=tuple(
            column
            for column in figure.columns
            if figure.rows and isinstance(
                figure.rows[0].get(column), (int, float)
            )
        ),
    )
    return (
        f'<h2 id="{html.escape(figure.name)}">{html.escape(figure.title)}</h2>'
        f'<p class="desc">{html.escape(figure.description)}</p>'
        f'<div class="vis" id="vis-{html.escape(figure.name)}"></div>'
        f'<script type="application/json" class="vl-spec" '
        f'data-target="vis-{html.escape(figure.name)}">{spec_json}</script>'
        f"<details><summary>Data table "
        f"({len(figure.rows)} rows)</summary>{table}</details>"
    )


def _skipped_section(skipped: Mapping[str, str]) -> str:
    if not skipped:
        return ""
    items = "".join(
        f"<li><code>{html.escape(name)}</code> — "
        f'<span class="skip">{html.escape(reason)}</span></li>'
        for name, reason in sorted(skipped.items())
    )
    return f"<h2>Figures skipped</h2><ul>{items}</ul>"


def _gate_section(gate: Optional[Mapping[str, Any]]) -> str:
    if gate is None:
        return (
            "<h2>Bench gate</h2><p class='desc'>Not run for this report "
            "(generate with <code>python -m repro figures --gate</code> "
            "to include verdicts).</p>"
        )
    verdict = (
        '<p><strong class="status-ok">PASS</strong> — no regressions '
        f"({format_count(gate.get('missing'))} metric(s) missing).</p>"
        if gate.get("ok")
        else '<p><strong class="status-bad">FAIL</strong> — '
        f"{format_count(gate.get('regressions'))} regression(s), "
        f"{format_count(gate.get('missing'))} missing.</p>"
    )
    rows = [
        {
            "metric": row.get("metric"),
            "baseline": _gate_value(row.get("baseline")),
            "current": _gate_value(row.get("current")),
            "drift": format_ratio(row.get("relative_change"))
            if row.get("relative_change") is not None else "—",
            "status": row.get("status"),
        }
        for row in gate.get("rows", [])
    ]
    return (
        "<h2>Bench gate</h2>"
        + verdict
        + _table(
            ["metric", "baseline", "current", "drift", "status"],
            rows,
            numeric=("baseline", "current", "drift"),
            status_column="status",
        )
    )


def _gate_value(value: Any) -> str:
    """Gate cells can hold non-scalars (exact dict comparisons)."""
    if isinstance(value, dict):
        return f"<{len(value)} keys>"
    return format_number(value)


def audit_from_manifest(
    manifest: Optional[Mapping[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Condense a campaign manifest's attempt history into audit rows.

    ``merge_campaign`` folds per-task claim counts and abandonment back
    into ``manifest.json``; this keeps only what a reader needs — which
    shards needed more than one claim, and which were abandoned — in
    deterministic task-id order.
    """
    if manifest is None:
        return None
    attempts = manifest.get("attempts") or {}
    tasks = []
    for task_id, record in sorted(attempts.items()):
        claims = int(record.get("claims", 0))
        abandoned = bool(record.get("abandoned"))
        if claims <= 1 and not abandoned:
            continue
        tasks.append(
            {
                "task": task_id,
                "claims": claims,
                "status": "abandoned" if abandoned else "reclaimed",
            }
        )
    return {
        "tasks_total": len(attempts),
        "tasks_flagged": tasks,
    }


def _audit_section(
    reports: Sequence[Tuple[str, Mapping[str, Any]]],
    audits: Mapping[str, Optional[Dict[str, Any]]],
) -> str:
    parts = ["<h2>Retry &amp; timeout audit</h2>"]
    rows = []
    for label, report in reports:
        rows.append(
            {
                "campaign": label,
                "retried runs": format_count(report.get("retried")),
                "timeouts": format_count(report.get("timeout")),
                "failed": format_count(report.get("failed")),
            }
        )
    parts.append(
        _table(
            ["campaign", "retried runs", "timeouts", "failed"],
            rows,
            numeric=("retried runs", "timeouts", "failed"),
        )
    )
    for label, audit in sorted(audits.items()):
        if audit is None:
            continue
        flagged = audit.get("tasks_flagged", [])
        if not flagged:
            parts.append(
                f"<p class='desc'><code>{html.escape(label)}</code>: all "
                f"{format_count(audit.get('tasks_total'))} shard task(s) "
                "completed on their first claim.</p>"
            )
            continue
        parts.append(
            f"<h3><code>{html.escape(label)}</code> — shards needing "
            "attention</h3>"
        )
        parts.append(
            _table(
                ["task", "claims", "status"],
                flagged,
                numeric=("claims",),
                status_column="status",
            )
        )
    return "".join(parts)


def _blame_section(
    reports: Sequence[Tuple[str, Mapping[str, Any]]]
) -> str:
    """Per-scheduler walk-stage blame table, when the reports carry the
    always-on ``walk.stage.*`` counter summary (see
    :mod:`repro.obs.attrib`)."""
    from repro.obs.attrib import STAGES

    rows = []
    stages_present: List[str] = []
    for label, report in reports:
        summary = report.get("walk_stages_by_scheduler") or {}
        for scheduler in sorted(summary):
            entry = summary[scheduler]
            shares = entry.get("stage_shares", {})
            row: Dict[str, Any] = {"campaign": label, "scheduler": scheduler}
            for stage in STAGES:
                if stage not in shares:
                    continue
                if stage not in stages_present:
                    stages_present.append(stage)
                row[stage] = format_ratio(shares[stage])
            rows.append(row)
    if not rows:
        return ""
    stage_columns = [s for s in STAGES if s in stages_present]
    return (
        "<h2>Walk-stage blame</h2>"
        "<p class='desc'>Share of total walk cycles spent in each "
        "pipeline stage, from the always-on walk.stage.* counters "
        "(no tracing needed). See docs/OBSERVABILITY.md "
        "&sect;&nbsp;Latency attribution.</p>"
        + _table(
            ["campaign", "scheduler", *stage_columns],
            rows,
            numeric=tuple(stage_columns),
        )
    )


def _failures_section(
    reports: Sequence[Tuple[str, Mapping[str, Any]]]
) -> str:
    rows = []
    for label, report in reports:
        for failure in report.get("failures", []):
            rows.append(
                {
                    "campaign": label,
                    "spec": failure.get("spec"),
                    "status": failure.get("status"),
                    "error type": failure.get("error_type"),
                    "error": failure.get("error"),
                }
            )
    if not rows:
        return (
            "<h2>Failures</h2><p class='desc'>None — every spec "
            "completed.</p>"
        )
    rows.sort(key=lambda r: (r["campaign"], str(r["spec"])))
    return "<h2>Failures</h2>" + _table(
        ["campaign", "spec", "status", "error type", "error"],
        rows,
        status_column="status",
    )


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------


def build_report_html(
    reports: Sequence[Tuple[str, Mapping[str, Any]]],
    figures: Sequence[Figure],
    skipped: Mapping[str, str],
    gate: Optional[Mapping[str, Any]] = None,
    manifests: Optional[Mapping[str, Optional[Mapping[str, Any]]]] = None,
    title: str = REPORT_TITLE,
) -> str:
    """Assemble the whole page from already-built pieces."""
    audits = {
        label: audit_from_manifest((manifests or {}).get(label))
        for label, _report in reports
    }
    figure_toc = "".join(
        f'<li><a href="#{html.escape(figure.name)}">'
        f"{html.escape(figure.title)}</a></li>"
        for figure in figures
    )
    sections = [
        f"<h1>{html.escape(title)}</h1>",
        _summary_section(reports),
        f"<h2>Figures</h2><ul>{figure_toc}</ul>",
        *[_figure_section(figure) for figure in figures],
        _blame_section(reports),
        _skipped_section(skipped),
        _gate_section(gate),
        _audit_section(reports, audits),
        _failures_section(reports),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"{_VEGA_CDN}\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(section for section in sections if section)
        + f"\n<script>{_EMBED_JS}</script>\n</body>\n</html>\n"
    )


def render_campaign_report(
    reports: Sequence[Tuple[str, Mapping[str, Any]]],
    gate: Optional[Mapping[str, Any]] = None,
    manifests: Optional[Mapping[str, Optional[Mapping[str, Any]]]] = None,
    names: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
    title: str = REPORT_TITLE,
) -> str:
    """Build figures from fleet reports and render the full HTML page."""
    data = CampaignData.from_reports(reports, baseline=baseline)
    figures, skipped = build_figures(data, names)
    return build_report_html(
        reports, figures, skipped, gate=gate, manifests=manifests, title=title
    )
