"""Discrete-event simulation kernel."""

from repro.engine.event_queue import EventQueue
from repro.engine.simulator import Simulator

__all__ = ["EventQueue", "Simulator"]
