"""A stable binary-heap event queue.

Events are ordered first by timestamp, then by insertion order so that
events scheduled for the same cycle fire in FIFO order.  This stability
matters for reproducibility: the simulator must produce bit-identical
statistics across runs with the same seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

Event = Tuple[int, int, Callable[[], Any]]


class EventQueue:
    """Min-heap of ``(time, sequence, callback)`` events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to fire at ``time``.

        ``time`` must be an integer cycle count; fractional timestamps
        would break the determinism guarantees of the engine.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> int:
        """Timestamp of the earliest pending event.

        Raises :class:`IndexError` when the queue is empty.
        """
        return self._heap[0][0]
