"""A deterministic priority queue of tagged simulation events.

Events are plain data: ``(time, sequence, kind, payload)``.  ``kind`` is
a string naming a handler registered on the simulator and ``payload`` is
a tuple of arguments for it.  Keeping events as data (instead of bound
closures) is what makes the queue serialisable: :meth:`snapshot`
captures the exact heap and insertion sequence, and :meth:`restore`
rebuilds them so a resumed run pops the identical event order.

Ties at the same timestamp break by insertion order (the monotonically
increasing sequence number), so event ordering — and therefore every
simulation statistic — is reproducible.  Comparison never reaches
``kind`` or ``payload`` because ``(time, sequence)`` is unique.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

#: One scheduled event: ``(time, sequence, kind, payload)``.
Event = Tuple[int, int, str, tuple]


class EventQueue:
    """Min-heap of :data:`Event` tuples ordered by (time, sequence)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, kind: str, payload: tuple = ()) -> None:
        """Schedule ``kind`` with ``payload`` at absolute cycle ``time``.

        ``time`` must be an integer cycle count; fractional timestamps
        would break the determinism guarantees of the engine.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> int:
        """Timestamp of the earliest pending event.

        Raises :class:`IndexError` when the queue is empty.
        """
        return self._heap[0][0]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The queue as plain data: heap list (already heap-ordered) + seq."""
        return {"heap": list(self._heap), "sequence": self._sequence}

    def restore(self, state: Dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot`'s heap and sequence wholesale."""
        self._heap = list(state["heap"])
        self._sequence = state["sequence"]
