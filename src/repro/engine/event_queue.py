"""A deterministic calendar queue of tagged simulation events.

Events are plain data: ``(time, sequence, kind, payload)``.  ``kind`` is
a string naming a handler registered on the simulator and ``payload`` is
a tuple of arguments for it.  Keeping events as data (instead of bound
closures) is what makes the queue serialisable: :meth:`snapshot`
captures the pending events and insertion sequence, and :meth:`restore`
rebuilds them so a resumed run pops the identical event order.

Structure: a *calendar* of buckets keyed on the absolute integer cycle
(``dict`` of ``time -> [(sequence, kind, payload), ...]``) plus a small
binary heap holding each distinct pending timestamp once.  Same-cycle
events — the common case in a cycle-quantised simulation — append to an
existing bucket in O(1) with no heap sift; the heap only orders the
far-future tail of distinct timestamps.  The run loop drains whole
buckets at a time (:meth:`pop_bucket`), which is what enables the
simulator's kind-batched dispatch.

Ties at the same timestamp break by insertion order (the monotonically
increasing sequence number): buckets are appended in sequence order, so
bucket order *is* (time, sequence) order.  Event ordering — and
therefore every simulation statistic — is reproducible.

The queue also tracks the *floor* — the timestamp of the bucket most
recently drained.  Pushing below the floor would corrupt pop order
(that bucket is already gone), so :meth:`push` rejects it; this also
subsumes the old non-negative-time check.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

#: One scheduled event: ``(time, sequence, kind, payload)``.
Event = Tuple[int, int, str, tuple]


class EventQueue:
    """Calendar/bucket queue of :data:`Event`s ordered by (time, sequence)."""

    __slots__ = ("_buckets", "_times", "_sequence", "_size", "_floor")

    def __init__(self) -> None:
        #: time -> [(sequence, kind, payload), ...] in sequence order.
        self._buckets: Dict[int, List[Tuple[int, str, tuple]]] = {}
        #: Min-heap of the distinct pending timestamps (each exactly once).
        self._times: List[int] = []
        self._sequence = 0
        self._size = 0
        #: Timestamp of the most recently drained bucket; pushes below
        #: this would schedule into the past.
        self._floor = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: int, kind: str, payload: tuple = ()) -> None:
        """Schedule ``kind`` with ``payload`` at absolute cycle ``time``.

        ``time`` must be an integer cycle count no earlier than the last
        drained timestamp; fractional or past timestamps would break the
        determinism guarantees of the engine.
        """
        if time < self._floor:
            raise ValueError(
                f"cannot schedule event at {time}: events up to "
                f"{self._floor} have already fired"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(self._sequence, kind, payload)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((self._sequence, kind, payload))
        self._sequence += 1
        self._size += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        time = self._times[0]
        bucket = self._buckets[time]
        sequence, kind, payload = bucket.pop(0)
        if not bucket:
            del self._buckets[time]
            heapq.heappop(self._times)
        self._size -= 1
        self._floor = time
        return (time, sequence, kind, payload)

    def pop_bucket(self) -> Tuple[int, List[Tuple[int, str, tuple]]]:
        """Remove and return ``(time, events)`` for the earliest cycle.

        The returned list holds every event pending at that cycle, in
        (time, sequence) pop order.  Events pushed at the same cycle
        *while the caller processes the batch* open a fresh bucket and
        are drained by a subsequent call — exactly the order a scalar
        pop loop would produce.
        """
        time = heapq.heappop(self._times)
        bucket = self._buckets.pop(time)
        self._size -= len(bucket)
        self._floor = time
        return time, bucket

    def requeue(self, time: int, events: List[Tuple[int, str, tuple]]) -> None:
        """Return the unprocessed tail of a drained bucket to the queue.

        Used by the run loop when an event budget expires mid-bucket.
        ``events`` carry older sequence numbers than anything pushed at
        ``time`` since the drain, so they go back *in front*.
        """
        if not events:
            return
        existing = self._buckets.get(time)
        if existing is None:
            self._buckets[time] = list(events)
            heapq.heappush(self._times, time)
        else:
            self._buckets[time] = list(events) + existing
        self._size += len(events)

    def peek_time(self) -> int:
        """Timestamp of the earliest pending event.

        Raises :class:`IndexError` when the queue is empty.
        """
        return self._times[0]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The queue as plain data: (time, sequence)-sorted events + seq.

        The event list is emitted in canonical sorted order under the
        historical ``"heap"`` key — a sorted list is a valid heap, so
        snapshots stay interchangeable across engine versions.
        """
        events: List[Event] = []
        for time in sorted(self._buckets):
            for sequence, kind, payload in self._buckets[time]:
                events.append((time, sequence, kind, payload))
        return {
            "heap": events,
            "sequence": self._sequence,
            "floor": self._floor,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot`'s events and sequence wholesale.

        Accepts both canonical (sorted) and legacy heap-ordered event
        lists: events are re-sorted into buckets either way.
        """
        self._buckets = {}
        self._times = []
        for time, sequence, kind, payload in sorted(state["heap"]):
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [(sequence, kind, payload)]
                self._times.append(time)
            else:
                bucket.append((sequence, kind, payload))
        heapq.heapify(self._times)
        self._sequence = state["sequence"]
        self._size = len(state["heap"])
        self._floor = state.get("floor", 0)
