"""In-run simulation checkpoints with deterministic resume.

A checkpoint is ONE pickle over a combined plain-data state dict
gathered from every stateful component.  Using a single ``pickle.dumps``
matters: the pending-walk buffer, the walkers, the event queue's
payloads and the GPU's instruction records *share* request/entry objects
by identity, and pickle's memo preserves that sharing — restoring piece
by piece would clone the shared objects and silently fork their state.

What a checkpoint contains:

* ``version`` — the checkpoint format version (mismatches are refused);
* ``config`` — the run's fully-resolved :class:`SystemConfig` (itself a
  picklable dataclass, fault plan included), so a resume can rebuild an
  identical system without any side-channel;
* ``meta`` — workload/scheduler/seed/run arguments needed to rebuild the
  harness around the system (number of wavefronts, scale, max cycles);
* ``state`` — the combined component state dict.

Components themselves are never pickled (they hold simulator/handler
references); each contributes a ``snapshot()`` dict of plain data and
accepts it back via ``restore()``.  Events must be tagged data events —
a pending ``"__call__"`` closure event makes the state unpicklable, and
:func:`save_checkpoint` reports it as such.

The event queue's snapshot is canonical regardless of its internal
layout: the calendar queue emits its pending events as one
``(time, seq)``-sorted list under the legacy ``"heap"`` key (plus a
``"floor"`` marking the last drained cycle), and ``restore`` sorts on
load — so checkpoints written before the calendar queue restore
unchanged and the format version stays at 1.
"""

from __future__ import annotations

import io
import os
import pickle
import uuid
from typing import Any, Dict, Optional

#: Bump when the combined state layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Identifies a repro checkpoint blob (first dict key checked on load).
CHECKPOINT_FORMAT = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be produced, read or applied."""


def dump_checkpoint(
    config: Any,
    state: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Serialise one checkpoint into a bytes blob (single pickle)."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": config,
        "meta": dict(meta or {}),
        "state": state,
    }
    try:
        buffer = io.BytesIO()
        pickle.dump(payload, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # closures in event payloads, locks, ...
        raise CheckpointError(
            f"simulation state is not serialisable: {exc!r}; checkpointing "
            "requires data-only events (no '__call__' closures pending)"
        ) from exc
    return buffer.getvalue()


def load_checkpoint(blob: bytes) -> Dict[str, Any]:
    """Deserialise and validate a checkpoint blob."""
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"not a readable checkpoint: {exc!r}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError("not a repro checkpoint blob")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version} unsupported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return payload


def save_checkpoint_file(
    path: str,
    config: Any,
    state: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a checkpoint blob to ``path`` atomically.

    The blob is fully serialised before any file is opened, so an
    unserialisable state never truncates an existing checkpoint; the
    write itself goes through a uniquely-named temp file (pid + uuid,
    collision-proof against a racing second writer of the same spec)
    and an ``os.replace``, so a process SIGKILLed mid-dump leaves the
    *previous* checkpoint intact rather than a torn file that would
    poison every later resume.
    """
    blob = dump_checkpoint(config, state, meta)
    tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def load_checkpoint_file(path: str) -> Dict[str, Any]:
    with open(path, "rb") as handle:
        return load_checkpoint(handle.read())
