"""The simulation kernel: a clock plus an event loop.

Every hardware model in this package (TLBs, walkers, DRAM banks, compute
units) advances by scheduling callbacks on a shared :class:`Simulator`.
The kernel is deliberately tiny — models register plain callables, there
is no process/coroutine machinery — which keeps the event loop fast
enough to run millions of events in pure Python.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.event_queue import EventQueue


class Simulator:
    """A discrete-event simulator with an integer cycle clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for progress reporting)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at absolute cycle ``time``.

        Scheduling in the past is an error — it indicates a model bug
        (e.g. a resource reporting completion before it started).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        self._queue.push(time, callback)

    def after(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._queue.push(self._now + delay, callback)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event would fire
        after ``until``, or after ``max_events`` events.  Returns the
        final simulation time.
        """
        queue = self._queue
        fired = 0
        while queue:
            if until is not None and queue.peek_time() > until:
                self._now = until
                break
            if max_events is not None and fired >= max_events:
                break
            time, _, callback = queue.pop()
            self._now = time
            callback()
            fired += 1
        self._events_processed += fired
        return self._now

    def step(self) -> bool:
        """Fire a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = self._queue.pop()
        self._now = time
        callback()
        self._events_processed += 1
        return True
