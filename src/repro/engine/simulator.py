"""The simulation kernel: a clock plus an event loop.

Every hardware model in this package (TLBs, walkers, DRAM banks, compute
units) advances by scheduling callbacks on a shared :class:`Simulator`.
The kernel is deliberately tiny — models register plain callables, there
is no process/coroutine machinery — which keeps the event loop fast
enough to run millions of events in pure Python.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.engine.event_queue import EventQueue


class Simulator:
    """A discrete-event simulator with an integer cycle clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._events_processed = 0
        #: Installed monitors: mutable ``[callback, interval, countdown]``
        #: slots, so the run loop decrements in place.
        self._monitors: List[list] = []

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for progress reporting)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at absolute cycle ``time``.

        Scheduling in the past is an error — it indicates a model bug
        (e.g. a resource reporting completion before it started).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        self._queue.push(time, callback)

    def after(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._queue.push(self._now + delay, callback)

    def set_monitor(
        self, callback: Optional[Callable[[], Any]], interval_events: int = 10_000
    ) -> None:
        """Install (or clear, with ``None``) the periodic monitor hook.

        ``callback`` runs every ``interval_events`` fired events during
        :meth:`run` — the attachment point for watchdogs and invariant
        checkers.  A monitor may raise to abort the run; the clock and
        event counts stay consistent.  With no monitor installed the
        event loop is the original tight loop.

        This replaces *every* installed monitor; use :meth:`add_monitor`
        to attach several (e.g. a watchdog plus a metrics sampler).
        """
        if callback is not None and interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.clear()
        if callback is not None:
            self.add_monitor(callback, interval_events)

    def add_monitor(
        self, callback: Callable[[], Any], interval_events: int = 10_000
    ) -> None:
        """Attach one more periodic monitor, each with its own cadence.

        Monitors fire in installation order when their countdowns expire
        on the same event.
        """
        if interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.append([callback, interval_events, interval_events])

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event would fire
        after ``until``, or after ``max_events`` events.  Returns the
        final simulation time.  When the queue empties before ``until``
        the clock stays at the last fired event (callers discover
        premature drains by inspecting their own completion state).
        """
        queue = self._queue
        fired = 0
        monitors = self._monitors
        try:
            while queue:
                if until is not None and queue.peek_time() > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                time, _, callback = queue.pop()
                self._now = time
                callback()
                fired += 1
                if monitors:
                    for slot in monitors:
                        slot[2] -= 1
                        if slot[2] <= 0:
                            slot[2] = slot[1]
                            slot[0]()
        finally:
            self._events_processed += fired
        return self._now

    def step(self) -> bool:
        """Fire a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = self._queue.pop()
        self._now = time
        callback()
        self._events_processed += 1
        return True
