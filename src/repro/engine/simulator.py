"""The simulation kernel: a clock plus a data-driven event loop.

Every hardware model in this package (TLBs, walkers, DRAM banks, compute
units) advances by posting *tagged events* — ``(kind, payload)`` pairs —
on a shared :class:`Simulator`.  Components :meth:`register` a handler
per kind once at construction; the event loop then dispatches
``handlers[kind](*payload)``.  Because events are plain data, the whole
pending-event set can be checkpointed mid-run and restored later
(:meth:`snapshot` / :meth:`restore`) with bit-identical replay.

For convenience (and the unit tests' sake) plain callables still work:
:meth:`at` / :meth:`after` wrap a callable in the builtin ``"__call__"``
kind.  Such closure events run fine but cannot be serialised — a
checkpointable model must schedule only registered kinds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.engine.event_queue import EventQueue

#: The builtin event kind that carries a plain callable as its payload.
CALLABLE_KIND = "__call__"


class Simulator:
    """A discrete-event simulator with an integer cycle clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._events_processed = 0
        #: Installed monitors: mutable ``[callback, interval, countdown]``
        #: slots, so the run loop decrements in place.
        self._monitors: List[list] = []
        #: Event dispatch table: kind -> handler(*payload).
        self._handlers: Dict[str, Callable[..., Any]] = {
            CALLABLE_KIND: self._run_callable,
        }

    @staticmethod
    def _run_callable(fn: Callable[[], Any]) -> None:
        fn()

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for progress reporting)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------

    def register(self, kind: str, handler: Callable[..., Any]) -> None:
        """Bind ``handler`` to event ``kind`` (silently replacing any old
        binding — components re-register when a system is rebuilt)."""
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        self._handlers[kind] = handler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def post_at(self, time: int, kind: str, *payload: Any) -> None:
        """Schedule event ``kind`` at absolute cycle ``time``.

        Scheduling in the past is an error — it indicates a model bug
        (e.g. a resource reporting completion before it started).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        self._queue.push(time, kind, payload)

    def post(self, delay: int, kind: str, *payload: Any) -> None:
        """Schedule event ``kind`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._queue.push(self._now + delay, kind, payload)

    def at(self, time: int, callback: Any) -> None:
        """Schedule a completion target at absolute cycle ``time``.

        ``callback`` is either a plain callable (wrapped in the builtin
        ``"__call__"`` kind — convenient, but *not* checkpointable) or a
        ``(kind, *payload)`` event tuple, which is.
        """
        if callable(callback):
            self.post_at(time, CALLABLE_KIND, callback)
        else:
            self.post_at(time, callback[0], *callback[1:])

    def after(self, delay: int, callback: Any) -> None:
        """Schedule a completion target ``delay`` cycles from now."""
        if callable(callback):
            self.post(delay, CALLABLE_KIND, callback)
        else:
            self.post(delay, callback[0], *callback[1:])

    def dispatch(self, target: Any) -> None:
        """Invoke a completion target immediately (same cycle).

        Accepts the same shapes as :meth:`at` / :meth:`after`; used by
        models that complete a request synchronously instead of through
        the queue.
        """
        if callable(target):
            target()
        else:
            self._handlers[target[0]](*target[1:])

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------

    def set_monitor(
        self, callback: Optional[Callable[[], Any]], interval_events: int = 10_000
    ) -> None:
        """Install (or clear, with ``None``) the periodic monitor hook.

        ``callback`` runs every ``interval_events`` fired events during
        :meth:`run` — the attachment point for watchdogs and invariant
        checkers.  A monitor may raise to abort the run; the clock and
        event counts stay consistent.  With no monitor installed the
        event loop is the original tight loop.

        This replaces *every* installed monitor; use :meth:`add_monitor`
        to attach several (e.g. a watchdog plus a metrics sampler).
        """
        if callback is not None and interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.clear()
        if callback is not None:
            self.add_monitor(callback, interval_events)

    def add_monitor(
        self, callback: Callable[[], Any], interval_events: int = 10_000
    ) -> None:
        """Attach one more periodic monitor, each with its own cadence.

        Monitors fire in installation order when their countdowns expire
        on the same event.
        """
        if interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.append([callback, interval_events, interval_events])

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event would fire
        after ``until``, or after ``max_events`` events.  Returns the
        final simulation time.  When the queue empties before ``until``
        the clock stays at the last fired event (callers discover
        premature drains by inspecting their own completion state).
        """
        queue = self._queue
        fired = 0
        base = self._events_processed
        monitors = self._monitors
        handlers = self._handlers
        try:
            while queue:
                if until is not None and queue.peek_time() > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                time, _, kind, payload = queue.pop()
                self._now = time
                handlers[kind](*payload)
                fired += 1
                if monitors:
                    for slot in monitors:
                        slot[2] -= 1
                        if slot[2] <= 0:
                            slot[2] = slot[1]
                            # Monitors observe (and may checkpoint) the
                            # event count, so sync it before the call —
                            # the tight loop otherwise defers the store.
                            self._events_processed = base + fired
                            slot[0]()
        finally:
            self._events_processed = base + fired
        return self._now

    def step(self) -> bool:
        """Fire a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, kind, payload = self._queue.pop()
        self._now = time
        self._handlers[kind](*payload)
        self._events_processed += 1
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Clock, counters, pending events and monitor cadences.

        Handlers and monitor callbacks are *not* captured — they are
        code, re-registered when the system is rebuilt.  Monitor
        countdowns are stored positionally, so a resume must re-install
        its monitors in the same order before calling :meth:`restore`.
        """
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "queue": self._queue.snapshot(),
            "monitors": [(slot[1], slot[2]) for slot in self._monitors],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._now = state["now"]
        self._events_processed = state["events_processed"]
        self._queue.restore(state["queue"])
        counts = state.get("monitors", [])
        for slot, (interval, countdown) in zip(self._monitors, counts):
            slot[1] = interval
            slot[2] = countdown
