"""The simulation kernel: a clock plus a data-driven event loop.

Every hardware model in this package (TLBs, walkers, DRAM banks, compute
units) advances by posting *tagged events* — ``(kind, payload)`` pairs —
on a shared :class:`Simulator`.  Components :meth:`register` a handler
per kind once at construction; the event loop then dispatches
``handlers[kind](*payload)``.  Because events are plain data, the whole
pending-event set can be checkpointed mid-run and restored later
(:meth:`snapshot` / :meth:`restore`) with bit-identical replay.

The event loop is *batched*: it drains one calendar bucket (all events
pending at the current cycle) at a time and dispatches maximal runs of
consecutive same-kind events in a single call.  Kinds that registered a
batch handler (:meth:`register_batch`) receive the whole run as
``handle_batch([payload, ...])``; kinds without one fall back to the
scalar handler, called once per event.  Because a run is a *consecutive*
slice of the (time, sequence) order and batch handlers must process
payloads in list order, batched dispatch is observably identical to the
scalar loop — same handler invocation order, same results.

Monitor cadence survives batching: a dispatch run is capped at the
smallest monitor countdown (and the remaining ``max_events`` budget), so
monitors fire at exactly the same processed-event counts as a scalar
loop — which keeps checkpoint/watchdog/metrics cadence bit-identical.

For convenience (and the unit tests' sake) plain callables still work:
:meth:`at` / :meth:`after` wrap a callable in the builtin ``"__call__"``
kind.  Such closure events run fine but cannot be serialised — a
checkpointable model must schedule only registered kinds.
"""

from __future__ import annotations

import gc
from heapq import heappush
from typing import Any, Callable, Dict, List, Optional

from repro.engine.event_queue import EventQueue

#: The builtin event kind that carries a plain callable as its payload.
CALLABLE_KIND = "__call__"


class Simulator:
    """A discrete-event simulator with an integer cycle clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._events_processed = 0
        #: Installed monitors: mutable ``[callback, interval, countdown]``
        #: slots, so the run loop decrements in place.
        self._monitors: List[list] = []
        #: Event dispatch table: kind -> handler(*payload).
        self._handlers: Dict[str, Callable[..., Any]] = {
            CALLABLE_KIND: self._run_callable,
        }
        #: Batch dispatch table: kind -> handler(list_of_payloads).
        self._batch_handlers: Dict[str, Callable[[list], Any]] = {}

    @staticmethod
    def _run_callable(fn: Callable[[], Any]) -> None:
        fn()

    @property
    def now(self) -> int:
        """The current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far, queued and synchronously
        dispatched alike (for progress reporting)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Handler registry
    # ------------------------------------------------------------------

    def register(self, kind: str, handler: Callable[..., Any]) -> None:
        """Bind ``handler`` to event ``kind`` (silently replacing any old
        binding — components re-register when a system is rebuilt)."""
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        self._handlers[kind] = handler

    def register_batch(
        self, kind: str, handler: Callable[[list], Any]
    ) -> None:
        """Bind a *batch* handler to ``kind``.

        ``handler`` receives the payload tuples of a maximal run of
        consecutive same-cycle ``kind`` events, in (time, sequence)
        order, and must process them in that order — the contract that
        keeps batched dispatch equivalent to the scalar loop.  A kind
        with only a scalar handler simply never batches; a batch
        handler without the scalar registration is an error, because
        :meth:`step`, run-length-1 dispatch and :meth:`dispatch` all go
        through the scalar table.
        """
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        if kind not in self._handlers:
            raise ValueError(
                f"register a scalar handler for {kind!r} before its "
                f"batch handler"
            )
        self._batch_handlers[kind] = handler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    # The four scheduling entry points inline the calendar-bucket insert
    # (EventQueue.push) — they run once per event, and the extra call
    # frames are measurable on the hot path.  The queue's past-time
    # floor check is subsumed here: the clock can never sit below the
    # floor, so ``time >= self._now`` implies ``time >= floor``.

    def post_at(self, time: int, kind: str, *payload: Any) -> None:
        """Schedule event ``kind`` at absolute cycle ``time``.

        Scheduling in the past is an error — it indicates a model bug
        (e.g. a resource reporting completion before it started).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        queue = self._queue
        bucket = queue._buckets.get(time)
        if bucket is None:
            queue._buckets[time] = [(queue._sequence, kind, payload)]
            heappush(queue._times, time)
        else:
            bucket.append((queue._sequence, kind, payload))
        queue._sequence += 1
        queue._size += 1

    def post(self, delay: int, kind: str, *payload: Any) -> None:
        """Schedule event ``kind`` ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self._now + delay
        queue = self._queue
        bucket = queue._buckets.get(time)
        if bucket is None:
            queue._buckets[time] = [(queue._sequence, kind, payload)]
            heappush(queue._times, time)
        else:
            bucket.append((queue._sequence, kind, payload))
        queue._sequence += 1
        queue._size += 1

    def at(self, time: int, callback: Any) -> None:
        """Schedule a completion target at absolute cycle ``time``.

        ``callback`` is either a plain callable (wrapped in the builtin
        ``"__call__"`` kind — convenient, but *not* checkpointable) or a
        ``(kind, *payload)`` event tuple, which is.
        """
        if callable(callback):
            kind = CALLABLE_KIND
            payload: tuple = (callback,)
        else:
            kind = callback[0]
            payload = callback[1:]
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time}, current time is {self._now}"
            )
        queue = self._queue
        bucket = queue._buckets.get(time)
        if bucket is None:
            queue._buckets[time] = [(queue._sequence, kind, payload)]
            heappush(queue._times, time)
        else:
            bucket.append((queue._sequence, kind, payload))
        queue._sequence += 1
        queue._size += 1

    def after(self, delay: int, callback: Any) -> None:
        """Schedule a completion target ``delay`` cycles from now."""
        if callable(callback):
            kind = CALLABLE_KIND
            payload: tuple = (callback,)
        else:
            kind = callback[0]
            payload = callback[1:]
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self._now + delay
        queue = self._queue
        bucket = queue._buckets.get(time)
        if bucket is None:
            queue._buckets[time] = [(queue._sequence, kind, payload)]
            heappush(queue._times, time)
        else:
            bucket.append((queue._sequence, kind, payload))
        queue._sequence += 1
        queue._size += 1

    def dispatch(self, target: Any) -> None:
        """Invoke a completion target immediately (same cycle).

        Accepts the same shapes as :meth:`at` / :meth:`after`; used by
        models that complete a request synchronously instead of through
        the queue.  A dispatched completion is real work, so it counts
        toward :attr:`events_processed` and ticks monitor countdowns —
        otherwise watchdog/metrics cadence would drift relative to the
        queued-event stream.  Monitors themselves fire only at event
        *boundaries* in :meth:`run` (firing mid-handler could observe —
        or checkpoint — half-updated component state).
        """
        if callable(target):
            target()
        else:
            self._handlers[target[0]](*target[1:])
        self._events_processed += 1
        for slot in self._monitors:
            slot[2] -= 1

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------

    def set_monitor(
        self, callback: Optional[Callable[[], Any]], interval_events: int = 10_000
    ) -> None:
        """Install (or clear, with ``None``) the periodic monitor hook.

        ``callback`` runs every ``interval_events`` fired events during
        :meth:`run` — the attachment point for watchdogs and invariant
        checkers.  A monitor may raise to abort the run; the clock and
        event counts stay consistent.  With no monitor installed the
        event loop is the original tight loop.

        This replaces *every* installed monitor; use :meth:`add_monitor`
        to attach several (e.g. a watchdog plus a metrics sampler).
        """
        if callback is not None and interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.clear()
        if callback is not None:
            self.add_monitor(callback, interval_events)

    def add_monitor(
        self, callback: Callable[[], Any], interval_events: int = 10_000
    ) -> None:
        """Attach one more periodic monitor, each with its own cadence.

        Monitors fire in installation order when their countdowns expire
        on the same event.
        """
        if interval_events <= 0:
            raise ValueError(
                f"interval_events must be positive, got {interval_events}"
            )
        self._monitors.append([callback, interval_events, interval_events])

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the next event would fire
        after ``until``, or after ``max_events`` events.  Returns the
        final simulation time.  When the queue empties before ``until``
        the clock stays at the last fired event (callers discover
        premature drains by inspecting their own completion state).
        """
        queue = self._queue
        handlers = self._handlers
        batch_handlers = self._batch_handlers
        monitors = self._monitors
        limit = float("inf") if max_events is None else max_events
        fired = 0
        # The loop allocates heavily (event tuples, payloads) but creates
        # no reference cycles of its own; pausing the cyclic collector
        # for the drain avoids generation-0 sweeps every ~700 tuples.
        # Reference counting still frees everything promptly; anything
        # cyclic is collected when GC resumes.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_loop(queue, handlers, batch_handlers, monitors, until, limit)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self._now

    def _run_loop(self, queue, handlers, batch_handlers, monitors, until, limit):
        fired = 0
        while queue._times:
            if until is not None and queue._times[0] > until:
                self._now = until
                break
            if fired >= limit:
                break
            time, bucket = queue.pop_bucket()
            self._now = time
            i = 0
            n = len(bucket)
            try:
                while i < n:
                    event = bucket[i]
                    kind = event[1]
                    j = i + 1
                    while j < n and bucket[j][1] == kind:
                        j += 1
                    take = j - i
                    # Cap the dispatch run at the max-events budget and
                    # at the nearest monitor due point, so monitors fire
                    # at exactly the scalar loop's event counts.
                    if fired + take > limit:
                        take = limit - fired
                        j = i + take
                    if monitors:
                        due = min(slot[2] for slot in monitors)
                        if due < 1:
                            due = 1
                        if take > due:
                            take = due
                            j = i + take
                    if take == 1:
                        # An event whose handler raises is consumed (the
                        # index advances first), matching the scalar pop
                        # loop; siblings after it stay queued.
                        i = j
                        handlers[kind](*event[2])
                        fired += 1
                        self._events_processed += 1
                    else:
                        batch = batch_handlers.get(kind)
                        if batch is None:
                            handler = handlers[kind]
                            while i < j:
                                event = bucket[i]
                                i += 1
                                handler(*event[2])
                                fired += 1
                                self._events_processed += 1
                        else:
                            payloads = [event[2] for event in bucket[i:j]]
                            i = j
                            batch(payloads)
                            fired += take
                            self._events_processed += take
                    if monitors:
                        due = False
                        for slot in monitors:
                            slot[2] -= take
                            if slot[2] <= 0:
                                due = True
                        if due:
                            if i < n:
                                # Monitors may checkpoint (or inspect)
                                # the queue, so the unprocessed tail of
                                # this bucket must be back in it before
                                # any monitor runs; the outer loop then
                                # re-pops the same cycle.
                                queue.requeue(time, bucket[i:])
                                n = i
                            for slot in monitors:
                                if slot[2] <= 0:
                                    slot[2] = slot[1]
                                    slot[0]()
                    if fired >= limit:
                        break
            finally:
                if i < n:
                    # Aborted mid-bucket (budget exhausted, or a handler
                    # or monitor raised): the unprocessed tail goes back
                    # so the queue stays consistent.
                    queue.requeue(time, bucket[i:])
        return self._now

    def step(self) -> bool:
        """Fire a single event.  Returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, kind, payload = self._queue.pop()
        self._now = time
        self._handlers[kind](*payload)
        self._events_processed += 1
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Clock, counters, pending events and monitor cadences.

        Handlers and monitor callbacks are *not* captured — they are
        code, re-registered when the system is rebuilt.  Monitor
        countdowns are stored positionally, so a resume must re-install
        its monitors in the same order before calling :meth:`restore`.
        """
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "queue": self._queue.snapshot(),
            "monitors": [(slot[1], slot[2]) for slot in self._monitors],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._now = state["now"]
        self._events_processed = state["events_processed"]
        self._queue.restore(state["queue"])
        counts = state.get("monitors", [])
        for slot, (interval, countdown) in zip(self._monitors, counts):
            slot[1] = interval
            slot[2] = countdown
