"""The scheduler zoo: policy families transplanted from related work.

The paper closes by framing page-walk scheduling as an open design
space.  This module populates it with three families the related-work
section points at, each expressed as a pluggable
:class:`~repro.core.schedulers.WalkScheduler` so the registry, CLI,
fleet sweeps and checkpointing treat them exactly like the paper's own
policies:

``wasp``
    Distance-ahead walk prefetching in the spirit of WASP/inter-core
    cooperative TLB prefetchers: SIMT-aware selection, plus the IOMMU
    walk-prefetches the next ``prefetch_distance`` pages of every
    completed demand walk on otherwise-idle walkers.  Demand traffic
    always wins — prefetches only consume walkers that would idle.

``iru``
    An IRU-style irregular-access reorder unit (Segura et al.): TLB
    misses stage in a small window *before* the pending buffer, are
    admitted sorted by (instruction, page), and same-page requests
    coalesce against pending walks.  Divergent bursts therefore enter
    the buffer as contiguous, smaller jobs — which shortest-job-first
    then schedules; selection itself is plain SJF.

``mosaic``
    Mosaic-style dynamic large-page promotion (Ausavarungnirun et
    al.): the IOMMU counts distinct base pages walked per 2 MB region;
    a region crossing ``promote_threshold`` is promoted into a small
    region TLB whose hits bypass the walk machinery entirely.  LRU
    capacity evictions are demotions, so promotion adapts under
    contention.  Selection is SIMT-aware.

The fourth family named by the issue — SMS-style staged batching/QoS
(Ausavarungnirun et al., ISCA 2012) — schedules the *DRAM channel*,
not the walk buffer, so it lives in :mod:`repro.memory.controller` as
memory-controller policy ``"sms"`` (``DRAMConfig.controller``).

All knobs are class attributes read by the IOMMU at construction
(see ``mmu/iommu.py``); they are configuration, not run state, so the
inherited ``snapshot``/``restore`` remain complete.
"""

from __future__ import annotations

from typing import Optional

from repro.core.schedulers import (
    _FACTORIES,
    SIMTAwareScheduler,
    SJFScheduler,
)


class WaSPScheduler(SIMTAwareScheduler):
    """SIMT-aware selection + distance-ahead walk prefetch (``wasp``)."""

    name = "wasp"
    prefetch_distance = 4

    def __init__(
        self,
        aging_threshold: int = 2_000_000,
        prefetch_distance: Optional[int] = None,
    ) -> None:
        super().__init__(aging_threshold)
        if prefetch_distance is not None:
            if prefetch_distance < 0:
                raise ValueError("prefetch distance must be non-negative")
            self.prefetch_distance = prefetch_distance


class IRUScheduler(SJFScheduler):
    """Pre-buffer reorder/coalesce unit feeding plain SJF (``iru``)."""

    name = "iru"
    reorder_window_cycles = 8
    coalesce_pending = True

    def __init__(
        self,
        aging_threshold: int = 2_000_000,
        reorder_window: Optional[int] = None,
    ) -> None:
        super().__init__(aging_threshold)
        if reorder_window is not None:
            if reorder_window <= 0:
                raise ValueError("reorder window must be positive")
            self.reorder_window_cycles = reorder_window


class MosaicScheduler(SIMTAwareScheduler):
    """SIMT-aware selection + dynamic 2 MB promotion (``mosaic``)."""

    name = "mosaic"
    promote_threshold = 8
    region_tlb_entries = 16

    def __init__(
        self,
        aging_threshold: int = 2_000_000,
        promote_threshold: Optional[int] = None,
        region_tlb_entries: Optional[int] = None,
    ) -> None:
        super().__init__(aging_threshold)
        if promote_threshold is not None:
            if promote_threshold <= 0:
                raise ValueError("promotion threshold must be positive")
            self.promote_threshold = promote_threshold
        if region_tlb_entries is not None:
            if region_tlb_entries <= 0:
                raise ValueError("region TLB needs at least one entry")
            self.region_tlb_entries = region_tlb_entries


ZOO_FACTORIES = {
    "wasp": lambda **kw: WaSPScheduler(
        aging_threshold=kw.get("aging_threshold", 2_000_000),
        prefetch_distance=kw.get("prefetch_distance"),
    ),
    "iru": lambda **kw: IRUScheduler(
        aging_threshold=kw.get("aging_threshold", 2_000_000),
        reorder_window=kw.get("reorder_window"),
    ),
    "mosaic": lambda **kw: MosaicScheduler(
        aging_threshold=kw.get("aging_threshold", 2_000_000),
        promote_threshold=kw.get("promote_threshold"),
        region_tlb_entries=kw.get("region_tlb_entries"),
    ),
}

# Self-registration: importing this module (which
# ``schedulers._ensure_zoo`` does on every registry access) makes the
# zoo selectable by name everywhere a baseline policy is.
_FACTORIES.update(ZOO_FACTORIES)
