"""The IOMMU's buffer of pending page-table walk requests.

The buffer is what a scheduler scans: the paper calls its size the
scheduler's *lookahead* (Fig 14).  Entries are kept in arrival order.

Unlike the hardware's associative scan of buffer slots, this model keeps
*indexes* alongside the entries so every scheduler query is sub-linear
(the policy decisions are bit-identical to a linear scan — see
``docs/PERFORMANCE.md`` and the differential tests):

* a global arrival deque and per-instruction / per-application arrival
  deques (lazily pruned) make ``oldest`` and ``oldest_for_instruction``
  amortised O(1);
* per-VPN entries live in an insertion-ordered dict keyed by arrival
  sequence, so coalescing lookups and removals are O(1);
* a lazy min-heap over ``(score, oldest_seq, instruction)`` keys (see
  :class:`~repro.core.scoring.ScoreIndex`) answers the shortest-job-first
  query in amortised O(log n) instead of an O(n) rescan.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.core.request import TranslationRequest, WalkBufferEntry
from repro.core.scoring import ScoreIndex, ScoreKey, ScoreTable

#: Rebuild a lazy score index once it holds this many stale keys per
#: live one (keeps memory proportional to occupancy, amortised O(1)).
_INDEX_SLACK = 4
_INDEX_MIN = 64


class PendingWalkBuffer:
    """Holds pending walks, their coalescing state and instruction scores."""

    def __init__(self, capacity: int, track_scores: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        #: Whether the score index (and per-app indexes) are maintained.
        #: The IOMMU disables this for policies with ``needs_scores``
        #: False (fcfs/random/batch) so their hot path skips heap pushes.
        self.track_scores = track_scores
        self._entries: Dict[int, WalkBufferEntry] = {}
        # Duplicate-VPN entries are legal (the baseline IOMMU does not
        # merge same-page walks across instructions), so index per VPN
        # by arrival sequence; insertion order keeps the oldest first.
        self._by_vpn: Dict[int, Dict[int, WalkBufferEntry]] = {}
        self._scores = ScoreTable()
        self._arrival_seq = 0
        # Arrival-order indexes.  Deques are pruned lazily: an entry
        # removed from ``_entries`` is dropped when it surfaces at a
        # deque front, so each entry costs O(1) amortised per index.
        self._arrival: Deque[WalkBufferEntry] = deque()
        self._by_instruction: Dict[int, Deque[WalkBufferEntry]] = {}
        self._by_app: Dict[int, Deque[WalkBufferEntry]] = {}
        self._per_app: Dict[int, Dict[int, Deque[WalkBufferEntry]]] = {}
        #: instruction -> {app -> pending-entry count}; lets a score
        #: change (direct dispatch) refresh every affected app index.
        self._instruction_apps: Dict[int, Dict[int, int]] = {}
        self._score_index = ScoreIndex()
        self._app_score_index: Dict[int, ScoreIndex] = {}
        self.peak_occupancy = 0
        self.total_insertions = 0
        self.total_coalesced = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalkBufferEntry]:
        """Iterate entries in arrival order."""
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------

    def _is_live(self, entry: WalkBufferEntry) -> bool:
        return self._entries.get(entry.arrival_seq) is entry

    def _front(self, queue: Deque[WalkBufferEntry]) -> Optional[WalkBufferEntry]:
        """The oldest still-buffered entry of ``queue`` (prunes stale)."""
        while queue:
            entry = queue[0]
            if self._is_live(entry):
                return entry
            queue.popleft()
        return None

    def _oldest_of_instruction(self, instruction_id: int) -> Optional[WalkBufferEntry]:
        queue = self._by_instruction.get(instruction_id)
        if queue is None:
            return None
        entry = self._front(queue)
        if entry is None:
            del self._by_instruction[instruction_id]
        return entry

    def _oldest_of_app_instruction(
        self, app_id: int, instruction_id: int
    ) -> Optional[WalkBufferEntry]:
        per_instruction = self._per_app.get(app_id)
        if per_instruction is None:
            return None
        queue = per_instruction.get(instruction_id)
        if queue is None:
            return None
        entry = self._front(queue)
        if entry is None:
            del per_instruction[instruction_id]
            if not per_instruction:
                del self._per_app[app_id]
        return entry

    def _push_instruction_key(self, instruction_id: int) -> None:
        """Refresh the global score-index truth for an instruction."""
        entry = self._oldest_of_instruction(instruction_id)
        if entry is None:
            return
        self._score_index.push(
            self._scores.score_of(instruction_id), entry.arrival_seq, instruction_id
        )
        if len(self._score_index) > max(
            _INDEX_MIN, _INDEX_SLACK * len(self._by_instruction)
        ):
            self._score_index.rebuild(self._current_keys())

    def _push_app_key(self, app_id: int, instruction_id: int) -> None:
        """Refresh one application's score-index truth for an instruction."""
        entry = self._oldest_of_app_instruction(app_id, instruction_id)
        if entry is None:
            return
        index = self._app_score_index.setdefault(app_id, ScoreIndex())
        index.push(
            self._scores.score_of(instruction_id), entry.arrival_seq, instruction_id
        )
        per_instruction = self._per_app.get(app_id, {})
        if len(index) > max(_INDEX_MIN, _INDEX_SLACK * len(per_instruction)):
            index.rebuild(self._current_app_keys(app_id))

    def _current_keys(self) -> List[ScoreKey]:
        keys: List[ScoreKey] = []
        for instruction_id in list(self._by_instruction):
            entry = self._oldest_of_instruction(instruction_id)
            if entry is not None:
                keys.append(
                    (
                        self._scores.score_of(instruction_id),
                        entry.arrival_seq,
                        instruction_id,
                    )
                )
        return keys

    def _current_app_keys(self, app_id: int) -> List[ScoreKey]:
        keys: List[ScoreKey] = []
        for instruction_id in list(self._per_app.get(app_id, {})):
            entry = self._oldest_of_app_instruction(app_id, instruction_id)
            if entry is not None:
                keys.append(
                    (
                        self._scores.score_of(instruction_id),
                        entry.arrival_seq,
                        instruction_id,
                    )
                )
        return keys

    def _key_is_current(self, key: ScoreKey) -> bool:
        score, oldest_seq, instruction_id = key
        entry = self._oldest_of_instruction(instruction_id)
        return (
            entry is not None
            and entry.arrival_seq == oldest_seq
            and self._scores.score_of(instruction_id) == score
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def find_by_vpn(self, vpn: int) -> Optional[WalkBufferEntry]:
        """The oldest pending entry for ``vpn``, if any (for coalescing)."""
        entries = self._by_vpn.get(vpn)
        if not entries:
            return None
        return next(iter(entries.values()))

    def add(
        self,
        request: TranslationRequest,
        arrival_time: int,
        estimated_accesses: int = 0,
    ) -> WalkBufferEntry:
        """Insert a new pending walk for ``request``.

        ``estimated_accesses`` is the PWC-probe estimate (action 1-a);
        it is accumulated into the issuing instruction's score (1-b).
        The score persists until :meth:`complete_walk` is called for the
        instruction's last walk.  Raises :class:`OverflowError` when the
        buffer is full — callers must check :attr:`is_full` and apply
        back-pressure.
        """
        if self.is_full:
            raise OverflowError("IOMMU buffer is full")
        entry = WalkBufferEntry(
            request,
            arrival_seq=self._arrival_seq,
            arrival_time=arrival_time,
            estimated_accesses=estimated_accesses,
        )
        self._arrival_seq += 1
        self._entries[entry.arrival_seq] = entry
        self._by_vpn.setdefault(entry.vpn, {})[entry.arrival_seq] = entry
        self._scores.add(entry.instruction_id, estimated_accesses)
        self._arrival.append(entry)
        self._by_instruction.setdefault(entry.instruction_id, deque()).append(entry)
        if self.track_scores:
            self._by_app.setdefault(entry.app_id, deque()).append(entry)
            self._per_app.setdefault(entry.app_id, {}).setdefault(
                entry.instruction_id, deque()
            ).append(entry)
            apps = self._instruction_apps.setdefault(entry.instruction_id, {})
            apps[entry.app_id] = apps.get(entry.app_id, 0) + 1
            self._push_instruction_key(entry.instruction_id)
            # The instruction's score just changed, so every application
            # holding pending entries of it needs a fresh key — not only
            # the arriving entry's application.
            for app_id in list(apps):
                self._push_app_key(app_id, entry.instruction_id)
        self.total_insertions += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def attach(self, entry: WalkBufferEntry, request: TranslationRequest) -> None:
        """Coalesce a same-page request onto an existing pending walk.

        The new request contributes no extra walk work (the single walk
        serves both), so scores are unchanged.
        """
        entry.attach(request)
        self.total_coalesced += 1

    def remove(self, entry: WalkBufferEntry) -> None:
        """Remove a dispatched (or cancelled) entry.

        The instruction's score is intentionally NOT released here — the
        walk is merely moving from pending to in-flight.  Call
        :meth:`complete_walk` when the walk finishes.
        """
        if self._entries.get(entry.arrival_seq) is not entry:
            raise KeyError(f"entry {entry!r} is not in the buffer")
        del self._entries[entry.arrival_seq]
        same_vpn = self._by_vpn[entry.vpn]
        del same_vpn[entry.arrival_seq]
        if not same_vpn:
            del self._by_vpn[entry.vpn]
        if self.track_scores:
            apps = self._instruction_apps.get(entry.instruction_id)
            if apps is not None:
                remaining = apps.get(entry.app_id, 0) - 1
                if remaining > 0:
                    apps[entry.app_id] = remaining
                else:
                    apps.pop(entry.app_id, None)
                    if not apps:
                        del self._instruction_apps[entry.instruction_id]
            # The instruction's oldest pending entry may have changed;
            # refresh its index truths (stale keys expire lazily).
            self._push_instruction_key(entry.instruction_id)
            self._push_app_key(entry.app_id, entry.instruction_id)

    def account_direct_dispatch(
        self, instruction_id: int, estimated_accesses: int
    ) -> None:
        """Score a walk that bypassed the buffer (idle-walker fast path).

        Keeps the instruction's score complete even when some of its
        walks never queued.
        """
        self._scores.add(instruction_id, estimated_accesses)
        if self.track_scores:
            # The score changed while the instruction may have buffered
            # entries (possible when a scan is in progress): refresh.
            self._push_instruction_key(instruction_id)
            for app_id in list(self._instruction_apps.get(instruction_id, ())):
                self._push_app_key(app_id, instruction_id)

    def complete_walk(self, instruction_id: int) -> None:
        """Release one walk's score accounting (after the walk finishes)."""
        self._scores.complete(instruction_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def score_of(self, entry: WalkBufferEntry) -> int:
        """The aggregate score of the entry's issuing instruction."""
        return self._scores.score_of(entry.instruction_id)

    def oldest(self) -> Optional[WalkBufferEntry]:
        """The entry that arrived first (FCFS choice).  Amortised O(1)."""
        return self._front(self._arrival)

    def oldest_for_instruction(self, instruction_id: int) -> Optional[WalkBufferEntry]:
        """The oldest pending entry of ``instruction_id``.  Amortised O(1)."""
        return self._oldest_of_instruction(instruction_id)

    def min_score_entry(self) -> Optional[WalkBufferEntry]:
        """The pending entry minimising ``(score, arrival_seq)``.

        Bit-identical to ``min(buffer, key=lambda e: (score_of(e),
        e.arrival_seq))`` but amortised O(log n) via the lazy score
        index.  Requires ``track_scores``.
        """
        if not self._entries:
            return None
        key = self._score_index.peek_valid(self._key_is_current)
        if key is None:
            raise RuntimeError(
                "score index out of sync with buffer "
                "(was the buffer built with track_scores=False?)"
            )
        return self._oldest_of_instruction(key[2])

    def min_score_entry_for_app(self, app_id: int) -> Optional[WalkBufferEntry]:
        """Same as :meth:`min_score_entry`, restricted to one application."""
        index = self._app_score_index.get(app_id)
        if index is None:
            return None

        def is_current(key: ScoreKey) -> bool:
            score, oldest_seq, instruction_id = key
            entry = self._oldest_of_app_instruction(app_id, instruction_id)
            return (
                entry is not None
                and entry.arrival_seq == oldest_seq
                and self._scores.score_of(instruction_id) == score
            )

        key = index.peek_valid(is_current)
        if key is None:
            return None
        return self._oldest_of_app_instruction(app_id, key[2])

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Entries, every index (stale keys included) and counters.

        Indexes are captured verbatim — including lazily-pruned stale
        deque members and stale score-index keys — so a restored buffer
        answers every query identically to the original, stale-pruning
        side effects and all.  Entry objects appear in several indexes;
        the enclosing single-pickle checkpoint preserves their identity.
        """
        return {
            "capacity": self.capacity,
            "track_scores": self.track_scores,
            "entries": dict(self._entries),
            "by_vpn": {
                vpn: dict(entries) for vpn, entries in self._by_vpn.items()
            },
            "scores": self._scores.snapshot(),
            "arrival_seq": self._arrival_seq,
            "arrival": list(self._arrival),
            "by_instruction": {
                iid: list(queue) for iid, queue in self._by_instruction.items()
            },
            "by_app": {
                app: list(queue) for app, queue in self._by_app.items()
            },
            "per_app": {
                app: {iid: list(queue) for iid, queue in per.items()}
                for app, per in self._per_app.items()
            },
            "instruction_apps": {
                iid: dict(apps) for iid, apps in self._instruction_apps.items()
            },
            "score_index": self._score_index.snapshot(),
            "app_score_index": {
                app: index.snapshot()
                for app, index in self._app_score_index.items()
            },
            "peak_occupancy": self.peak_occupancy,
            "total_insertions": self.total_insertions,
            "total_coalesced": self.total_coalesced,
        }

    def restore(self, state: Dict[str, object]) -> None:
        if state["capacity"] != self.capacity or (
            state["track_scores"] != self.track_scores
        ):
            raise ValueError(
                "checkpoint buffer shape mismatch: capacity/track_scores "
                "differ from this buffer's configuration"
            )
        self._entries = dict(state["entries"])
        self._by_vpn = {
            vpn: dict(entries) for vpn, entries in state["by_vpn"].items()
        }
        self._scores.restore(state["scores"])
        self._arrival_seq = state["arrival_seq"]
        self._arrival = deque(state["arrival"])
        self._by_instruction = {
            iid: deque(queue) for iid, queue in state["by_instruction"].items()
        }
        self._by_app = {
            app: deque(queue) for app, queue in state["by_app"].items()
        }
        self._per_app = {
            app: {iid: deque(queue) for iid, queue in per.items()}
            for app, per in state["per_app"].items()
        }
        self._instruction_apps = {
            iid: dict(apps) for iid, apps in state["instruction_apps"].items()
        }
        self._score_index.restore(state["score_index"])
        self._app_score_index = {}
        for app, dump in state["app_score_index"].items():
            index = ScoreIndex()
            index.restore(dump)
            self._app_score_index[app] = index
        self.peak_occupancy = state["peak_occupancy"]
        self.total_insertions = state["total_insertions"]
        self.total_coalesced = state["total_coalesced"]

    def pending_apps(self) -> List[int]:
        """Applications with pending entries, ordered by oldest entry.

        The order matches the first-occurrence order of a linear scan of
        the buffer, which is what the fair-share policy's original set
        comprehension produced.  Requires ``track_scores``.
        """
        fronts = []
        for app_id in list(self._by_app):
            entry = self._front(self._by_app[app_id])
            if entry is None:
                del self._by_app[app_id]
            else:
                fronts.append((entry.arrival_seq, app_id))
        fronts.sort()
        return [app_id for _, app_id in fronts]
