"""The IOMMU's buffer of pending page-table walk requests.

The buffer is what a scheduler scans: the paper calls its size the
scheduler's *lookahead* (Fig 14).  Entries are kept in arrival order;
scans are linear, mirroring the hardware's associative scan of buffer
slots.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.request import TranslationRequest, WalkBufferEntry
from repro.core.scoring import ScoreTable


class PendingWalkBuffer:
    """Holds pending walks, their coalescing state and instruction scores."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, WalkBufferEntry] = {}
        # Duplicate-VPN entries are legal (the baseline IOMMU does not
        # merge same-page walks across instructions), so index lists.
        self._by_vpn: Dict[int, List[WalkBufferEntry]] = {}
        self._scores = ScoreTable()
        self._arrival_seq = 0
        self.peak_occupancy = 0
        self.total_insertions = 0
        self.total_coalesced = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalkBufferEntry]:
        """Iterate entries in arrival order."""
        return iter(self._entries.values())

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def find_by_vpn(self, vpn: int) -> Optional[WalkBufferEntry]:
        """The oldest pending entry for ``vpn``, if any (for coalescing)."""
        entries = self._by_vpn.get(vpn)
        return entries[0] if entries else None

    def add(
        self,
        request: TranslationRequest,
        arrival_time: int,
        estimated_accesses: int = 0,
    ) -> WalkBufferEntry:
        """Insert a new pending walk for ``request``.

        ``estimated_accesses`` is the PWC-probe estimate (action 1-a);
        it is accumulated into the issuing instruction's score (1-b).
        The score persists until :meth:`complete_walk` is called for the
        instruction's last walk.  Raises :class:`OverflowError` when the
        buffer is full — callers must check :attr:`is_full` and apply
        back-pressure.
        """
        if self.is_full:
            raise OverflowError("IOMMU buffer is full")
        entry = WalkBufferEntry(
            request,
            arrival_seq=self._arrival_seq,
            arrival_time=arrival_time,
            estimated_accesses=estimated_accesses,
        )
        self._arrival_seq += 1
        self._entries[entry.arrival_seq] = entry
        self._by_vpn.setdefault(entry.vpn, []).append(entry)
        self._scores.add(entry.instruction_id, estimated_accesses)
        self.total_insertions += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def attach(self, entry: WalkBufferEntry, request: TranslationRequest) -> None:
        """Coalesce a same-page request onto an existing pending walk.

        The new request contributes no extra walk work (the single walk
        serves both), so scores are unchanged.
        """
        entry.attach(request)
        self.total_coalesced += 1

    def remove(self, entry: WalkBufferEntry) -> None:
        """Remove a dispatched (or cancelled) entry.

        The instruction's score is intentionally NOT released here — the
        walk is merely moving from pending to in-flight.  Call
        :meth:`complete_walk` when the walk finishes.
        """
        stored = self._entries.pop(entry.arrival_seq, None)
        if stored is not entry:
            raise KeyError(f"entry {entry!r} is not in the buffer")
        same_vpn = self._by_vpn[entry.vpn]
        same_vpn.remove(entry)
        if not same_vpn:
            del self._by_vpn[entry.vpn]

    def account_direct_dispatch(
        self, instruction_id: int, estimated_accesses: int
    ) -> None:
        """Score a walk that bypassed the buffer (idle-walker fast path).

        Keeps the instruction's score complete even when some of its
        walks never queued.
        """
        self._scores.add(instruction_id, estimated_accesses)

    def complete_walk(self, instruction_id: int) -> None:
        """Release one walk's score accounting (after the walk finishes)."""
        self._scores.complete(instruction_id)

    def score_of(self, entry: WalkBufferEntry) -> int:
        """The aggregate score of the entry's issuing instruction."""
        return self._scores.score_of(entry.instruction_id)

    def oldest(self) -> Optional[WalkBufferEntry]:
        """The entry that arrived first (FCFS choice)."""
        for entry in self._entries.values():
            return entry
        return None

    def oldest_for_instruction(self, instruction_id: int) -> Optional[WalkBufferEntry]:
        """The oldest pending entry of ``instruction_id``, or None."""
        for entry in self._entries.values():
            if entry.instruction_id == instruction_id:
                return entry
        return None
