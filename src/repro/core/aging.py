"""Starvation avoidance for score-based walk scheduling (paper §IV).

Any priority scheduler can starve: a stream of low-score instructions
could keep a high-score instruction's walks buffered forever.  The paper
adds an aging scheme — a pending walk that has been bypassed by more than
a threshold number of younger requests is serviced unconditionally.

Implementation note — incremental accounting
--------------------------------------------

The original model walked the whole buffer after every dispatch to bump
per-entry bypass counters (O(n) per select).  Two facts make that loop
unnecessary:

1. *Monotonicity*: among simultaneously buffered entries, bypass counts
   never increase with arrival order — an older entry was present for
   every dispatch that bypassed a younger one.  The set of starving
   entries is therefore always a prefix of arrival order, so "the oldest
   entry past the threshold" is simply *the* oldest entry, when it
   qualifies.
2. *Closed form at the frontier*: every buffered entry leaves the buffer
   through exactly one scheduler dispatch, and arrival sequences are
   allocated densely from zero.  For the oldest buffered entry ``e``,
   all ``e.arrival_seq`` older entries have already been dispatched, so
   the number of dispatches that bypassed ``e`` (younger than ``e``) is
   ``total_recorded_dispatches - e.arrival_seq``.

Together these reduce the whole policy to one counter incremented per
dispatch and one subtraction per starving check — O(1) each, with
decisions bit-identical to the per-entry loop (see the differential
tests in ``tests/test_scheduler_equivalence.py``).

The pre-existing per-entry API (mutating ``entry.bypass_count`` over a
plain iterable) is retained for diagnostics and unit tests; a manually
seeded ``entry.bypass_count`` acts as an offset on top of the derived
count, which keeps hand-built scheduler tests meaningful.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.request import WalkBufferEntry


class AgingPolicy:
    """Counts bypasses and promotes starving entries."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("aging threshold must be positive")
        self.threshold = threshold
        self.promotions = 0
        #: Scheduler dispatches of buffered entries observed so far.
        self._records = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_dispatch(self, dispatched: WalkBufferEntry) -> None:
        """Observe one scheduler dispatch (O(1) incremental path).

        Direct dispatches that bypassed the buffer (``arrival_seq`` -1)
        never bypass anyone and are ignored, matching the original
        accounting.
        """
        if dispatched.arrival_seq >= 0:
            self._records += 1

    def record_bypasses(
        self, entries: Iterable[WalkBufferEntry], dispatched: WalkBufferEntry
    ) -> None:
        """Credit a bypass to every entry older than the dispatched one.

        Legacy API.  For an indexed buffer this degenerates to
        :meth:`record_dispatch`; for a plain iterable (unit tests,
        diagnostics) it performs the original per-entry loop.
        """
        if hasattr(entries, "oldest"):
            self.record_dispatch(dispatched)
            return
        seq = dispatched.arrival_seq
        for entry in entries:
            if entry.arrival_seq < seq:
                entry.bypass_count += 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return {"promotions": self.promotions, "records": self._records}

    def restore(self, state: dict) -> None:
        self.promotions = state["promotions"]
        self._records = state["records"]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bypass_count_of(
        self, entry: WalkBufferEntry, buffer: Optional[Iterable[WalkBufferEntry]] = None
    ) -> int:
        """The entry's effective bypass count (diagnostic; O(n)).

        Derived as recorded dispatches of younger entries plus any
        manually seeded ``entry.bypass_count``.  ``buffer`` must be the
        buffer holding the entry; when omitted the entry is assumed to
        be the oldest buffered one.
        """
        older_buffered = 0
        if buffer is not None:
            older_buffered = sum(
                1 for other in buffer if other.arrival_seq < entry.arrival_seq
            )
        older_dispatched = entry.arrival_seq - older_buffered
        derived = self._records - older_dispatched
        return entry.bypass_count + max(0, derived)

    def starving(
        self, entries: Iterable[WalkBufferEntry]
    ) -> Optional[WalkBufferEntry]:
        """The oldest entry past the threshold, or None.

        With an indexed buffer this inspects only the arrival frontier
        (O(1)); bypass-count monotonicity guarantees no younger entry
        can qualify when the oldest does not.
        """
        oldest = getattr(entries, "oldest", None)
        if oldest is not None:
            victim = oldest()
            if victim is None:
                return None
            count = victim.bypass_count + max(0, self._records - victim.arrival_seq)
            if count < self.threshold:
                return None
            self.promotions += 1
            return victim
        victim: Optional[WalkBufferEntry] = None
        for entry in entries:
            if entry.bypass_count >= self.threshold:
                if victim is None or entry.arrival_seq < victim.arrival_seq:
                    victim = entry
        if victim is not None:
            self.promotions += 1
        return victim
