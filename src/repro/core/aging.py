"""Starvation avoidance for score-based walk scheduling (paper §IV).

Any priority scheduler can starve: a stream of low-score instructions
could keep a high-score instruction's walks buffered forever.  The paper
adds an aging scheme — a pending walk that has been bypassed by more than
a threshold number of younger requests is serviced unconditionally.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.request import WalkBufferEntry


class AgingPolicy:
    """Counts bypasses and promotes starving entries."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("aging threshold must be positive")
        self.threshold = threshold
        self.promotions = 0

    def record_bypasses(
        self, entries: Iterable[WalkBufferEntry], dispatched: WalkBufferEntry
    ) -> None:
        """Credit a bypass to every entry older than the dispatched one."""
        seq = dispatched.arrival_seq
        for entry in entries:
            if entry.arrival_seq < seq:
                entry.bypass_count += 1

    def starving(
        self, entries: Iterable[WalkBufferEntry]
    ) -> Optional[WalkBufferEntry]:
        """The oldest entry past the threshold, or None."""
        victim: Optional[WalkBufferEntry] = None
        for entry in entries:
            if entry.bypass_count >= self.threshold:
                if victim is None or entry.arrival_seq < victim.arrival_seq:
                    victim = entry
        if victim is not None:
            self.promotions += 1
        return victim
