"""Request types flowing through the translation machinery.

A :class:`TranslationRequest` is one coalesced address-translation need —
"SIMD instruction *i* needs page *p* translated".  When it misses the
whole TLB hierarchy it becomes (or joins) a :class:`WalkBufferEntry`
pending in the IOMMU buffer; the paper's schedulers pick among those
entries.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import INSTRUCTION_ID_BITS

#: Instruction IDs are tagged with this many bits in hardware (paper §IV).
INSTRUCTION_ID_SPACE = 1 << INSTRUCTION_ID_BITS


def tag_instruction_id(global_id: int) -> int:
    """Fold a global dynamic-instruction number into the 20-bit tag space."""
    return global_id % INSTRUCTION_ID_SPACE


class TranslationRequest:
    """One page-translation need of one SIMD memory instruction."""

    __slots__ = (
        "vpn",
        "instruction_id",
        "wavefront_id",
        "cu_id",
        "app_id",
        "issue_time",
        "iommu_arrival_time",
        "complete_time",
        "walk_accesses",
        "on_complete",
        "context",
    )

    def __init__(
        self,
        vpn: int,
        instruction_id: int,
        wavefront_id: int,
        cu_id: int,
        issue_time: int,
        on_complete: Optional[Callable[["TranslationRequest", int], None]] = None,
        app_id: int = 0,
    ) -> None:
        self.vpn = vpn
        self.instruction_id = tag_instruction_id(instruction_id)
        self.wavefront_id = wavefront_id
        self.cu_id = cu_id
        #: Owning application in multi-tenant runs (0 when single-app).
        self.app_id = app_id
        self.issue_time = issue_time
        self.iommu_arrival_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        #: Page-table memory accesses the serving walk performed (0 when
        #: the translation was satisfied by a TLB instead of a walk).
        self.walk_accesses = 0
        #: Called as ``on_complete(request, pfn)`` when the translation is
        #: available at the requester.  When ``None``, the IOMMU routes
        #: the reply through its ``reply_to`` sink instead — the
        #: serialisable path, since the sink is rebuilt with the system
        #: while a stored closure cannot be checkpointed.
        self.on_complete = on_complete
        #: Opaque requester-owned data carried through the translation
        #: round trip (the GPU stores ``(lines, inflight key)`` here).
        #: Must be plain data for the request to be checkpointable.
        self.context: tuple = ()

    @property
    def latency(self) -> Optional[int]:
        """End-to-end translation latency, once complete."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.issue_time

    def __repr__(self) -> str:
        return (
            f"TranslationRequest(vpn={self.vpn:#x}, "
            f"instr={self.instruction_id}, wf={self.wavefront_id})"
        )


class WalkBufferEntry:
    """A pending page-table walk in the IOMMU buffer.

    Multiple :class:`TranslationRequest` objects for the same virtual page
    can share one entry (walk coalescing): a single walk then satisfies
    all of them.
    """

    __slots__ = (
        "vpn",
        "instruction_id",
        "app_id",
        "arrival_seq",
        "arrival_time",
        "requests",
        "bypass_count",
        "estimated_accesses",
        "pinned_levels",
        "dispatch_time",
        "dispatch_seq",
    )

    def __init__(
        self,
        request: TranslationRequest,
        arrival_seq: int,
        arrival_time: int,
        estimated_accesses: int = 0,
    ) -> None:
        self.vpn = request.vpn
        self.instruction_id = request.instruction_id
        self.app_id = request.app_id
        self.arrival_seq = arrival_seq
        self.arrival_time = arrival_time
        self.requests: List[TranslationRequest] = [request]
        #: Number of younger entries dispatched ahead of this one (aging).
        self.bypass_count = 0
        #: PWC-probe estimate of memory accesses for this walk alone.
        self.estimated_accesses = estimated_accesses
        #: PWC levels counter-pinned when this entry was scored, recorded
        #: so the walk unpins exactly those levels — not whatever depth
        #: the walk happens to hit after intervening fills/evictions.
        self.pinned_levels: tuple = ()
        self.dispatch_time: Optional[int] = None
        self.dispatch_seq: Optional[int] = None

    def attach(self, request: TranslationRequest) -> None:
        """Coalesce another same-page request onto this pending walk."""
        if request.vpn != self.vpn:
            raise ValueError(
                f"cannot coalesce vpn {request.vpn:#x} onto entry "
                f"for vpn {self.vpn:#x}"
            )
        self.requests.append(request)

    @property
    def is_prefetch(self) -> bool:
        """True for walks issued by the IOMMU's prefetcher, not the GPU."""
        return self.requests[0].wavefront_id == PREFETCH_WAVEFRONT

    def __repr__(self) -> str:
        return (
            f"WalkBufferEntry(vpn={self.vpn:#x}, instr={self.instruction_id}, "
            f"seq={self.arrival_seq}, reqs={len(self.requests)})"
        )


#: Sentinel wavefront id marking prefetch-generated requests.
PREFETCH_WAVEFRONT = -1
