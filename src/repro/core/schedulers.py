"""Page-table walk schedulers.

The scheduler decides, each time a hardware page-table walker becomes
free, which pending walk in the IOMMU buffer it services next.  The
paper's contribution is the :class:`SIMTAwareScheduler`; the others are
the baselines it is evaluated against (FCFS, random) and single-idea
ablations (SJF-only, batch-only).

All schedulers share one tiny interface so the IOMMU can host any of
them:

``on_arrival(entry, buffer)``
    Called after a new walk request is buffered (the entry's PWC-based
    estimate has already been folded into its instruction's score).

``select(buffer)``
    Called when a walker is free; returns the entry to service next (the
    IOMMU removes it from the buffer) or None to idle.

``needs_scores``
    Whether the IOMMU should spend a PWC probe on every arriving request
    to maintain scores.  Baselines that ignore scores skip the probe so
    they do not perturb PWC counters.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from itertools import islice
from typing import Callable, Dict, Optional

from repro.core.aging import AgingPolicy
from repro.core.buffer import PendingWalkBuffer
from repro.core.request import WalkBufferEntry


class WalkScheduler(ABC):
    """Base class for walk-selection policies."""

    #: Short name used in configs, result tables and the registry.
    name = "abstract"
    #: Whether arriving requests must be scored against the PWC.
    needs_scores = False
    #: Whether selection scans the pending buffer (and therefore pays
    #: ``IOMMUConfig.scan_latency_cycles``).  FIFO-style policies pop a
    #: queue head in hardware and pay nothing.
    requires_scan = True
    #: WaSP-style walk-prefetch lookahead: after a demand walk for page
    #: *p* completes, the IOMMU walk-prefetches pages ``p+1 ..
    #: p+distance`` on otherwise-idle walkers.  0 disables; the legacy
    #: ``IOMMUConfig.prefetch_next_page`` flag is the distance-1 case.
    prefetch_distance = 0
    #: IRU-style reorder window, in cycles.  Non-zero makes the IOMMU
    #: stage arriving TLB misses for this long and admit each batch to
    #: the pending buffer sorted by (instruction, page), so divergent
    #: bursts arrive contiguous and same-page requests coalesce before
    #: they occupy buffer slots.  0 disables staging.
    reorder_window_cycles = 0
    #: Whether same-page arrivals may merge with *pending* buffered
    #: walks even under ``coalesce_walks="inflight"`` (the reorder
    #: unit's job-shrinking merge; "full" already implies it).
    coalesce_pending = False
    #: Mosaic-style promotion: distinct base pages walked within one
    #: 2 MB region before the region promotes into the IOMMU's region
    #: TLB.  0 disables promotion.
    promote_threshold = 0
    #: Capacity of the region TLB holding promoted 2 MB entries (LRU;
    #: a capacity eviction is a demotion).
    region_tlb_entries = 0

    def on_arrival(self, entry: WalkBufferEntry, buffer: PendingWalkBuffer) -> None:
        """Hook for arrival-time bookkeeping.  Default: nothing."""

    @abstractmethod
    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next entry to dispatch."""

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        """Observe a dispatch that bypassed the policy.

        The IOMMU dispatches an arriving request straight to an idle
        walker without consulting ``select``; schedulers that track the
        most-recently-scheduled instruction still need to see it.
        """

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Drop policy state that refers to walks no longer in ``buffer``.

        The IOMMU calls this after removing an entry from the pending
        buffer.  Batching policies use it to retire their batch pointer
        the moment the buffer holds no more walks from the batched
        instruction (paper §IV: batching lasts exactly as long as the
        instruction has pending walks) — otherwise the pointer survives
        the batch and a much later walk carrying the same 20-bit
        instruction tag would inherit batch priority it never earned.
        """

    def snapshot(self) -> dict:
        """Checkpointable policy state.  Stateless policies return {}."""
        return {}

    def restore(self, state: dict) -> None:
        """Adopt a snapshot produced by :meth:`snapshot`."""


class FCFSScheduler(WalkScheduler):
    """First-come-first-serve: the paper's baseline policy."""

    name = "fcfs"
    requires_scan = False

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        return buffer.oldest()


class RandomScheduler(WalkScheduler):
    """Uniformly random selection — the paper's worst case (Fig 2)."""

    name = "random"
    requires_scan = False

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        if buffer.is_empty:
            return None
        index = self._rng.randrange(len(buffer))
        # islice skips ``index`` entries in C instead of a Python-level
        # enumerate loop; the visited order (arrival order) and hence the
        # seeded selection sequence are unchanged.
        entry = next(islice(iter(buffer), index, None), None)
        if entry is None:
            raise AssertionError("unreachable: index within len(buffer)")
        return entry

    def snapshot(self) -> dict:
        return {"rng": self._rng.getstate()}

    def restore(self, state: dict) -> None:
        self._rng.setstate(state["rng"])


class SJFScheduler(WalkScheduler):
    """Shortest-job-first on instruction scores only (key idea 1, ablation).

    Picks the pending walk whose issuing instruction has the lowest
    aggregate score; ties go to the oldest entry.
    """

    name = "sjf"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = AgingPolicy(aging_threshold)

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        if buffer.is_empty:
            return None
        starving = self.aging.starving(buffer)
        if starving is not None:
            choice = starving
        else:
            choice = buffer.min_score_entry()
        self.aging.record_dispatch(choice)
        return choice

    def snapshot(self) -> dict:
        return {"aging": self.aging.snapshot()}

    def restore(self, state: dict) -> None:
        self.aging.restore(state["aging"])


class BatchScheduler(WalkScheduler):
    """Batching only (key idea 2, ablation).

    Prefers walks from the same instruction as the most recently
    scheduled walk; otherwise falls back to FCFS.
    """

    name = "batch"

    def __init__(self) -> None:
        self._last_instruction: Optional[int] = None

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        """Track the most recently dispatched instruction (batching)."""
        self._last_instruction = entry.instruction_id

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and buffer.oldest_for_instruction(self._last_instruction) is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        if buffer.is_empty:
            return None
        if self._last_instruction is not None:
            same = buffer.oldest_for_instruction(self._last_instruction)
            if same is not None:
                self.note_dispatch(same)
                return same
        choice = buffer.oldest()
        assert choice is not None
        self.note_dispatch(choice)
        return choice

    def snapshot(self) -> dict:
        return {"last_instruction": self._last_instruction}

    def restore(self, state: dict) -> None:
        self._last_instruction = state["last_instruction"]


class SIMTAwareScheduler(WalkScheduler):
    """The paper's SIMT-aware page-table walk scheduler (§IV).

    Selection order when a walker frees up:

    1. *Aging*: an entry bypassed ≥ threshold times is serviced first
       (oldest such entry).
    2. *Batching*: the oldest pending walk from the same instruction as
       the most recently dispatched walk (action 2-a).
    3. *Shortest-job-first*: the entry whose instruction has the lowest
       aggregate score, oldest first on ties.
    """

    name = "simt"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = AgingPolicy(aging_threshold)
        self._last_instruction: Optional[int] = None
        self.batch_hits = 0
        self.sjf_picks = 0

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        """Track the most recently dispatched instruction (batching)."""
        self._last_instruction = entry.instruction_id

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and buffer.oldest_for_instruction(self._last_instruction) is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        if buffer.is_empty:
            return None
        choice = self.aging.starving(buffer)
        if choice is None and self._last_instruction is not None:
            choice = buffer.oldest_for_instruction(self._last_instruction)
            if choice is not None:
                self.batch_hits += 1
        if choice is None:
            choice = buffer.min_score_entry()
            self.sjf_picks += 1
        self.aging.record_dispatch(choice)
        self.note_dispatch(choice)
        return choice

    def snapshot(self) -> dict:
        return {
            "aging": self.aging.snapshot(),
            "last_instruction": self._last_instruction,
            "batch_hits": self.batch_hits,
            "sjf_picks": self.sjf_picks,
        }

    def restore(self, state: dict) -> None:
        self.aging.restore(state["aging"])
        self._last_instruction = state["last_instruction"]
        self.batch_hits = state["batch_hits"]
        self.sjf_picks = state["sjf_picks"]


class FairShareScheduler(WalkScheduler):
    """QoS extension: SIMT-aware scheduling with per-application fairness.

    The paper closes by inviting follow-on work on page-walk scheduling
    "for both performance and QoS".  This policy adds an ATLAS-style
    least-attained-service tier between batching and SJF: when several
    applications share the GPU, the app that has received the least walk
    service so far gets first pick, and the SIMT-aware rules order walks
    *within* it.  With a single application it degenerates to the plain
    SIMT-aware policy.
    """

    name = "fairshare"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = AgingPolicy(aging_threshold)
        self._last_instruction: Optional[int] = None
        #: Walk-work (estimated accesses) served so far, per application.
        self.attained_service: Dict[int, int] = {}

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        """Track the most recently dispatched instruction (batching)."""
        self._last_instruction = entry.instruction_id
        self.attained_service[entry.app_id] = (
            self.attained_service.get(entry.app_id, 0)
            + max(1, entry.estimated_accesses)
        )

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and buffer.oldest_for_instruction(self._last_instruction) is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        """Choose the next pending walk under this policy."""
        if buffer.is_empty:
            return None
        choice = self.aging.starving(buffer)
        if choice is None and self._last_instruction is not None:
            choice = buffer.oldest_for_instruction(self._last_instruction)
        if choice is None:
            # Build the candidate set in buffer first-occurrence order so
            # tie-breaking via set iteration matches the original
            # ``{entry.app_id for entry in buffer}`` comprehension.
            pending_apps = set(buffer.pending_apps())
            neediest = min(
                pending_apps, key=lambda app: self.attained_service.get(app, 0)
            )
            choice = buffer.min_score_entry_for_app(neediest)
        self.aging.record_dispatch(choice)
        self.note_dispatch(choice)
        return choice

    def snapshot(self) -> dict:
        return {
            "aging": self.aging.snapshot(),
            "last_instruction": self._last_instruction,
            "attained_service": dict(self.attained_service),
        }

    def restore(self, state: dict) -> None:
        self.aging.restore(state["aging"])
        self._last_instruction = state["last_instruction"]
        self.attained_service = dict(state["attained_service"])


_FACTORIES: Dict[str, Callable[..., WalkScheduler]] = {
    "fcfs": lambda **kw: FCFSScheduler(),
    "random": lambda **kw: RandomScheduler(seed=kw.get("seed", 0)),
    "sjf": lambda **kw: SJFScheduler(aging_threshold=kw.get("aging_threshold", 2_000_000)),
    "batch": lambda **kw: BatchScheduler(),
    "simt": lambda **kw: SIMTAwareScheduler(
        aging_threshold=kw.get("aging_threshold", 2_000_000)
    ),
    "fairshare": lambda **kw: FairShareScheduler(
        aging_threshold=kw.get("aging_threshold", 2_000_000)
    ),
}


def _ensure_zoo() -> None:
    """Import the scheduler zoo so its factories self-register.

    Lazy (call-time) on purpose: :mod:`repro.core.zoo` subclasses the
    policies above, so a module-level import in either direction would
    deadlock on a partially-initialised module.  After the first call
    this is a ``sys.modules`` hit.
    """
    from repro.core import zoo  # noqa: F401  (import has the side effect)


def available_schedulers() -> tuple:
    """Names of every registered scheduling policy."""
    _ensure_zoo()
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, **kwargs) -> WalkScheduler:
    """Instantiate a scheduler by registry name.

    ``kwargs`` may include ``seed`` (random) and ``aging_threshold``
    (sjf / simt / the zoo families); irrelevant keys are ignored so one
    call site can serve every policy.
    """
    _ensure_zoo()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    return factory(**kwargs)
