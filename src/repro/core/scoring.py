"""Per-instruction work scores (paper §IV, actions 1-a / 1-b).

The score of a SIMD instruction estimates the total number of page-table
memory accesses needed to service *all* of its walk requests: each
request arriving at the IOMMU contributes its PWC-probe estimate (1–4
accesses) to the issuing instruction's running total.  Every buffered
request of an instruction shares the instruction's score; with a 64-wide
wavefront the score ranges 1–256.

Lifetime: a score accumulates from the instruction's first walk request
and is retained until its *last* walk completes.  Retention matters
because an instruction's requests trickle into the IOMMU over many
cycles (one per coalescer-port cycle): if the score were dropped as soon
as the instruction's buffered requests drained, every instruction would
briefly re-appear as a "short job" each time a new request of its
arrived, and shortest-job-first would degenerate into
newest-instruction-first — starving older heavy instructions instead of
ordering by true job length.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Optional, Tuple

#: A score-index key: ``(score, oldest_arrival_seq, instruction_id)``.
#: Ordering these tuples reproduces the scheduler's shortest-job-first
#: comparison ``(score_of(entry), entry.arrival_seq)`` exactly, because
#: for a fixed instruction the oldest pending entry has the minimal
#: arrival sequence and arrival sequences are globally unique.
ScoreKey = Tuple[int, int, int]


class ScoreIndex:
    """A lazy min-heap over :data:`ScoreKey` tuples.

    The index trades strict consistency for O(log n) updates: writers
    push a fresh key whenever an instruction's ``(score, oldest_seq)``
    truth changes and never delete the stale ones.  Readers pass a
    validator that checks a key against the current truth; stale keys
    are discarded as they surface at the heap top.  Each pushed key is
    popped at most once, so maintenance stays amortised O(log n) per
    buffer mutation.

    The owner is responsible for bounding staleness via :meth:`rebuild`
    (see ``PendingWalkBuffer``), which keeps heap size proportional to
    the number of live instructions rather than total history.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, score: int, oldest_seq: int, instruction_id: int) -> None:
        """Record a new ``(score, oldest_seq)`` truth for an instruction."""
        heapq.heappush(self._heap, (score, oldest_seq, instruction_id))

    def peek_valid(
        self, is_current: Callable[[ScoreKey], bool]
    ) -> Optional[ScoreKey]:
        """The smallest key accepted by ``is_current``, or None.

        Discards stale keys from the top; the returned key stays in the
        heap (it is still the current truth for its instruction).
        """
        heap = self._heap
        while heap:
            key = heap[0]
            if is_current(key):
                return key
            heapq.heappop(heap)
        return None

    def rebuild(self, keys: Iterable[ScoreKey]) -> None:
        """Replace the heap with exactly the given current truths."""
        self._heap = list(keys)
        heapq.heapify(self._heap)

    def snapshot(self) -> list:
        return list(self._heap)

    def restore(self, state: list) -> None:
        self._heap = list(state)


class ScoreTable:
    """Tracks the aggregate walk-work score of each SIMD instruction."""

    def __init__(self) -> None:
        self._scores: Dict[int, int] = {}
        self._active: Dict[int, int] = {}

    def add(self, instruction_id: int, estimated_accesses: int) -> int:
        """Account a walk request entering the IOMMU; returns the score.

        ``estimated_accesses`` is the request's PWC-probe estimate
        (action 1-a); it is summed into the instruction's total (1-b).
        """
        if estimated_accesses < 0:
            raise ValueError("estimated accesses must be non-negative")
        self._scores[instruction_id] = (
            self._scores.get(instruction_id, 0) + estimated_accesses
        )
        self._active[instruction_id] = self._active.get(instruction_id, 0) + 1
        return self._scores[instruction_id]

    def complete(self, instruction_id: int) -> None:
        """Account a walk finishing.  Frees the score after the last one."""
        remaining = self._active.get(instruction_id)
        if remaining is None:
            raise KeyError(f"instruction {instruction_id} has no active walks")
        if remaining == 1:
            del self._active[instruction_id]
            del self._scores[instruction_id]
        else:
            self._active[instruction_id] = remaining - 1

    def score_of(self, instruction_id: int) -> int:
        """Current score of an instruction (0 when it has nothing active)."""
        return self._scores.get(instruction_id, 0)

    def active_walks(self, instruction_id: int) -> int:
        """Walks of this instruction currently buffered or in flight."""
        return self._active.get(instruction_id, 0)

    def __len__(self) -> int:
        return len(self._scores)

    def snapshot(self) -> dict:
        return {"scores": dict(self._scores), "active": dict(self._active)}

    def restore(self, state: dict) -> None:
        self._scores = dict(state["scores"])
        self._active = dict(state["active"])
