"""Per-instruction work scores (paper §IV, actions 1-a / 1-b).

The score of a SIMD instruction estimates the total number of page-table
memory accesses needed to service *all* of its walk requests: each
request arriving at the IOMMU contributes its PWC-probe estimate (1–4
accesses) to the issuing instruction's running total.  Every buffered
request of an instruction shares the instruction's score; with a 64-wide
wavefront the score ranges 1–256.

Lifetime: a score accumulates from the instruction's first walk request
and is retained until its *last* walk completes.  Retention matters
because an instruction's requests trickle into the IOMMU over many
cycles (one per coalescer-port cycle): if the score were dropped as soon
as the instruction's buffered requests drained, every instruction would
briefly re-appear as a "short job" each time a new request of its
arrived, and shortest-job-first would degenerate into
newest-instruction-first — starving older heavy instructions instead of
ordering by true job length.
"""

from __future__ import annotations

from typing import Dict


class ScoreTable:
    """Tracks the aggregate walk-work score of each SIMD instruction."""

    def __init__(self) -> None:
        self._scores: Dict[int, int] = {}
        self._active: Dict[int, int] = {}

    def add(self, instruction_id: int, estimated_accesses: int) -> int:
        """Account a walk request entering the IOMMU; returns the score.

        ``estimated_accesses`` is the request's PWC-probe estimate
        (action 1-a); it is summed into the instruction's total (1-b).
        """
        if estimated_accesses < 0:
            raise ValueError("estimated accesses must be non-negative")
        self._scores[instruction_id] = (
            self._scores.get(instruction_id, 0) + estimated_accesses
        )
        self._active[instruction_id] = self._active.get(instruction_id, 0) + 1
        return self._scores[instruction_id]

    def complete(self, instruction_id: int) -> None:
        """Account a walk finishing.  Frees the score after the last one."""
        remaining = self._active.get(instruction_id)
        if remaining is None:
            raise KeyError(f"instruction {instruction_id} has no active walks")
        if remaining == 1:
            del self._active[instruction_id]
            del self._scores[instruction_id]
        else:
            self._active[instruction_id] = remaining - 1

    def score_of(self, instruction_id: int) -> int:
        """Current score of an instruction (0 when it has nothing active)."""
        return self._scores.get(instruction_id, 0)

    def active_walks(self, instruction_id: int) -> int:
        """Walks of this instruction currently buffered or in flight."""
        return self._active.get(instruction_id, 0)

    def __len__(self) -> int:
        return len(self._scores)
