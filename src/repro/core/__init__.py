"""The paper's contribution: SIMT-aware scheduling of page table walks.

This package is deliberately independent of the GPU/memory substrates:
schedulers operate on :class:`~repro.core.buffer.PendingWalkBuffer`
entries and nothing else, so they can be unit-tested (and reused) without
spinning up a full simulation.
"""

from repro.core.request import TranslationRequest, WalkBufferEntry
from repro.core.buffer import PendingWalkBuffer
from repro.core.scoring import ScoreTable
from repro.core.aging import AgingPolicy
from repro.core.schedulers import (
    BatchScheduler,
    FCFSScheduler,
    FairShareScheduler,
    RandomScheduler,
    SJFScheduler,
    SIMTAwareScheduler,
    WalkScheduler,
    available_schedulers,
    make_scheduler,
)

__all__ = [
    "AgingPolicy",
    "BatchScheduler",
    "FCFSScheduler",
    "FairShareScheduler",
    "PendingWalkBuffer",
    "RandomScheduler",
    "SJFScheduler",
    "SIMTAwareScheduler",
    "ScoreTable",
    "TranslationRequest",
    "WalkBufferEntry",
    "WalkScheduler",
    "available_schedulers",
    "make_scheduler",
]
