"""Naive reference schedulers: the pre-index O(n) implementations.

These classes preserve, verbatim, the original linear-scan algorithms
that :mod:`repro.core.schedulers` used before the buffer grew its
indexes — ``min()`` over the whole buffer for shortest-job-first, a
full-buffer loop for bypass accounting, and a linear sweep for
``oldest_for_instruction``.  They rely only on buffer *iteration* and
``score_of``, never on the indexed accessors, so they serve as an
executable specification:

* the differential tests (``tests/test_scheduler_equivalence.py``) run
  each optimized policy and its reference twin on identical workloads
  and assert bit-identical dispatch sequences and statistics;
* the microbenchmark harness (``benchmarks/perf/hotpath.py``) measures
  the select()-throughput gap between the two, which is the speedup the
  indexed hot path buys.

Reference policies are intentionally *not* registered in the scheduler
registry; build them directly and pass the instance to
:func:`repro.run_simulation` (or ``build_system``) via the ``scheduler``
argument.

Do not run a reference policy and an incremental
:class:`~repro.core.aging.AgingPolicy` against the same buffer: the
reference mutates ``entry.bypass_count``, which the incremental policy
treats as a manual offset.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.buffer import PendingWalkBuffer
from repro.core.request import WalkBufferEntry
from repro.core.schedulers import WalkScheduler


class NaiveAgingPolicy:
    """The original per-entry bypass accounting (O(n) per dispatch)."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("aging threshold must be positive")
        self.threshold = threshold
        self.promotions = 0

    def record_bypasses(
        self, entries, dispatched: WalkBufferEntry
    ) -> None:
        seq = dispatched.arrival_seq
        for entry in entries:
            if entry.arrival_seq < seq:
                entry.bypass_count += 1

    def starving(self, entries) -> Optional[WalkBufferEntry]:
        victim: Optional[WalkBufferEntry] = None
        for entry in entries:
            if entry.bypass_count >= self.threshold:
                if victim is None or entry.arrival_seq < victim.arrival_seq:
                    victim = entry
        if victim is not None:
            self.promotions += 1
        return victim


def naive_oldest(buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
    """First entry in arrival order, by linear iteration."""
    for entry in buffer:
        return entry
    return None


def naive_oldest_for_instruction(
    buffer: PendingWalkBuffer, instruction_id: int
) -> Optional[WalkBufferEntry]:
    """Oldest entry of an instruction, by linear iteration."""
    for entry in buffer:
        if entry.instruction_id == instruction_id:
            return entry
    return None


def naive_min_score_entry(buffer: PendingWalkBuffer) -> WalkBufferEntry:
    """The original shortest-job-first scan."""
    return min(buffer, key=lambda e: (buffer.score_of(e), e.arrival_seq))


class NaiveSJFScheduler(WalkScheduler):
    """Reference twin of :class:`repro.core.schedulers.SJFScheduler`."""

    name = "sjf-ref"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = NaiveAgingPolicy(aging_threshold)

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        if buffer.is_empty:
            return None
        starving = self.aging.starving(buffer)
        if starving is not None:
            choice = starving
        else:
            choice = naive_min_score_entry(buffer)
        self.aging.record_bypasses(buffer, choice)
        return choice


class NaiveBatchScheduler(WalkScheduler):
    """Reference twin of :class:`repro.core.schedulers.BatchScheduler`."""

    name = "batch-ref"

    def __init__(self) -> None:
        self._last_instruction: Optional[int] = None

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        self._last_instruction = entry.instruction_id

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and naive_oldest_for_instruction(buffer, self._last_instruction)
            is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        if buffer.is_empty:
            return None
        if self._last_instruction is not None:
            same = naive_oldest_for_instruction(buffer, self._last_instruction)
            if same is not None:
                self.note_dispatch(same)
                return same
        choice = naive_oldest(buffer)
        assert choice is not None
        self.note_dispatch(choice)
        return choice


class NaiveSIMTAwareScheduler(WalkScheduler):
    """Reference twin of :class:`repro.core.schedulers.SIMTAwareScheduler`."""

    name = "simt-ref"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = NaiveAgingPolicy(aging_threshold)
        self._last_instruction: Optional[int] = None
        self.batch_hits = 0
        self.sjf_picks = 0

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        self._last_instruction = entry.instruction_id

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and naive_oldest_for_instruction(buffer, self._last_instruction)
            is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        if buffer.is_empty:
            return None
        choice = self.aging.starving(buffer)
        if choice is None and self._last_instruction is not None:
            choice = naive_oldest_for_instruction(buffer, self._last_instruction)
            if choice is not None:
                self.batch_hits += 1
        if choice is None:
            choice = naive_min_score_entry(buffer)
            self.sjf_picks += 1
        self.aging.record_bypasses(buffer, choice)
        self.note_dispatch(choice)
        return choice


class NaiveFairShareScheduler(WalkScheduler):
    """Reference twin of :class:`repro.core.schedulers.FairShareScheduler`."""

    name = "fairshare-ref"
    needs_scores = True

    def __init__(self, aging_threshold: int = 2_000_000) -> None:
        self.aging = NaiveAgingPolicy(aging_threshold)
        self._last_instruction: Optional[int] = None
        self.attained_service: Dict[int, int] = {}

    def note_dispatch(self, entry: WalkBufferEntry) -> None:
        self._last_instruction = entry.instruction_id
        self.attained_service[entry.app_id] = (
            self.attained_service.get(entry.app_id, 0)
            + max(1, entry.estimated_accesses)
        )

    def resync(self, buffer: PendingWalkBuffer) -> None:
        """Retire the batch pointer once its instruction has drained."""
        if (
            self._last_instruction is not None
            and naive_oldest_for_instruction(buffer, self._last_instruction)
            is None
        ):
            self._last_instruction = None

    def select(self, buffer: PendingWalkBuffer) -> Optional[WalkBufferEntry]:
        if buffer.is_empty:
            return None
        choice = self.aging.starving(buffer)
        if choice is None and self._last_instruction is not None:
            choice = naive_oldest_for_instruction(buffer, self._last_instruction)
        if choice is None:
            pending_apps = {entry.app_id for entry in buffer}
            neediest = min(
                pending_apps, key=lambda app: self.attained_service.get(app, 0)
            )
            choice = min(
                (entry for entry in buffer if entry.app_id == neediest),
                key=lambda e: (buffer.score_of(e), e.arrival_seq),
            )
        self.aging.record_bypasses(buffer, choice)
        self.note_dispatch(choice)
        return choice


class NaiveWaSPScheduler(NaiveSIMTAwareScheduler):
    """Reference twin of :class:`repro.core.zoo.WaSPScheduler`.

    Selection is the naive SIMT-aware scan; the walk-prefetch machinery
    lives in the IOMMU and is driven purely by the ``prefetch_distance``
    class attribute, which must match the optimized twin's.
    """

    name = "wasp-ref"
    prefetch_distance = 4


class NaiveIRUScheduler(NaiveSJFScheduler):
    """Reference twin of :class:`repro.core.zoo.IRUScheduler`.

    Selection is the naive SJF scan; the reorder/coalesce window lives
    in the IOMMU and is driven by the class attributes below, which must
    match the optimized twin's.
    """

    name = "iru-ref"
    reorder_window_cycles = 8
    coalesce_pending = True


class NaiveMosaicScheduler(NaiveSIMTAwareScheduler):
    """Reference twin of :class:`repro.core.zoo.MosaicScheduler`.

    Selection is the naive SIMT-aware scan; the 2 MB promotion/demotion
    machinery lives in the IOMMU and is driven by the class attributes
    below, which must match the optimized twin's.
    """

    name = "mosaic-ref"
    promote_threshold = 8
    region_tlb_entries = 16


#: Reference twin per registry name (policies whose select differs from
#: the optimized implementation only in algorithmic complexity; fcfs and
#: random were already index-free and have no twin).  The zoo twins also
#: pin the IOMMU-side knobs (prefetch distance, reorder window, region
#: TLB) to the optimized values so the differential runs exercise the
#: full family, not just the select loop.
REFERENCE_FACTORIES = {
    "sjf": NaiveSJFScheduler,
    "batch": NaiveBatchScheduler,
    "simt": NaiveSIMTAwareScheduler,
    "fairshare": NaiveFairShareScheduler,
    "wasp": NaiveWaSPScheduler,
    "iru": NaiveIRUScheduler,
    "mosaic": NaiveMosaicScheduler,
}


def make_reference_scheduler(name: str, **kwargs) -> WalkScheduler:
    """Instantiate the naive reference twin of a registered policy."""
    try:
        factory = REFERENCE_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"no reference implementation for {name!r}; "
            f"available: {', '.join(sorted(REFERENCE_FACTORIES))}"
        ) from None
    if factory in (NaiveBatchScheduler,):
        return factory()
    return factory(aging_threshold=kwargs.get("aging_threshold", 2_000_000))
