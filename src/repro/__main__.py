"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run WORKLOAD``
    Simulate one workload under one scheduler and print its metrics.

``compare WORKLOAD``
    Run several schedulers on one workload and print speedups.  With
    ``--timeout``/``--retries`` each scheduler's run is bounded and
    retried in an isolated worker process; failures are summarised and
    the exit code is nonzero if any job ultimately fails.

``trace WORKLOAD``
    Simulate one workload with full lifecycle tracing and write a
    Chrome/Perfetto ``trace_event`` JSON file (open it at
    https://ui.perfetto.dev).  Timestamps are simulation cycles, so the
    trace is deterministic.

``metrics WORKLOAD``
    Simulate one workload with the live metrics registry sampling the
    translation pipeline (pending-walk depth, walker occupancy, PWC hit
    rates, DRAM queue depth) and print — or write — the JSON dump.

``blame``
    Walk-latency attribution: run a traced sweep (or analyze an
    existing trace with ``--trace``) and write the deterministic blame
    report — per-walk stage breakdowns reconciled to end-to-end
    latency, per-job critical paths, per-scheduler stage shares and
    top-K outlier walks.  See ``docs/OBSERVABILITY.md``.

``faults``
    Run a seeded fault-injection campaign (deterministic: the same seed
    prints byte-identical JSON).  ``--trace-dir`` additionally writes a
    per-case Perfetto trace with fault injections annotated;
    ``--fleet-log``/``--progress`` stream per-case fleet telemetry.

``fleet-report``
    Run a workload × scheduler × seed sweep under fleet telemetry and
    write the deterministic aggregated report (per-group distributions,
    geomean speedups vs the baseline scheduler) as JSON and markdown.

``bench-check``
    Compare the current ``BENCH_*.json`` numbers against the committed
    baselines in ``benchmarks/baselines/`` and exit nonzero when a
    watched metric regressed beyond its threshold.

``service SUBCOMMAND``
    The durable work-queue sweep service (:mod:`repro.service`):
    ``init`` shards a campaign into a manifest + filesystem queue,
    ``worker`` drains it from this process, ``run`` supervises a local
    worker pool end-to-end, ``resume`` repairs a campaign after any
    crash or full restart, ``status`` reports progress, ``merge`` folds
    per-shard results into the deterministic fleet report, and
    ``chaos`` runs the SIGKILL gate that proves crash-recovery does not
    change results.

``figure NAME``
    Regenerate one of the paper's figures/tables (fig2, fig3, fig5,
    fig6, fig8, fig9, fig10, fig11, fig12, fig13a/b/c, fig14a/b,
    table1, table2) and print it in the paper's shape.

``list``
    List available workloads and schedulers.
"""

from __future__ import annotations

import argparse
import sys

from repro import available_schedulers, run_simulation
from repro.experiments import figures, report
from repro.workloads.registry import workload_names


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads: ", ", ".join(workload_names()))
    print("schedulers:", ", ".join(available_schedulers()))
    return 0


def _print_result(result) -> None:
    print(result.summary())
    print(f"wavefronts/epoch: {result.wavefronts_per_epoch:.2f}")
    print(f"first/last walk latency: {result.first_walk_latency:.0f} / "
          f"{result.last_walk_latency:.0f} cycles")


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_simulation(
        args.workload.upper(),
        config=_load_config(args),
        scheduler=args.scheduler,
        num_wavefronts=args.wavefronts,
        scale=args.scale,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
    )
    _print_result(result)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.experiments.runner import resume_simulation

    result = resume_simulation(
        args.checkpoint,
        max_cycles=args.max_cycles,
        checkpoint_every=args.checkpoint_every,
    )
    _print_result(result)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_many, scheduler_sweep_specs

    schedulers = tuple(args.schedulers.split(","))
    specs = scheduler_sweep_specs(
        args.workload.upper(),
        schedulers,
        config=_load_config(args),
        num_wavefronts=args.wavefronts,
        scale=args.scale,
        seed=args.seed,
    )
    with _make_telemetry(args) as telemetry:
        outcomes = run_many(
            specs,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            return_outcomes=True,
            telemetry=telemetry,
        )
    baseline = outcomes[0].result if outcomes[0].ok else None
    for name, outcome in zip(schedulers, outcomes):
        if outcome.ok:
            result = outcome.result
            line = result.summary()
            if baseline is not None:
                line += f"  speedup={result.speedup_over(baseline):.3f}"
            if not args.quiet:
                print(line)
        elif not args.quiet:
            print(f"{name}: FAILED after {outcome.attempts} attempt(s) — "
                  f"{outcome.error_type}: {outcome.error}")
    failed = [
        name for name, outcome in zip(schedulers, outcomes) if not outcome.ok
    ]
    if failed:
        print(
            f"{len(failed)}/{len(outcomes)} jobs failed: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.trace import TraceConfig, validate_chrome_trace

    trace_kwargs = {}
    if args.categories:
        trace_kwargs["categories"] = frozenset(args.categories.split(","))
    if args.ring_size is not None:
        trace_kwargs["ring_size"] = args.ring_size
    trace_config = TraceConfig(**trace_kwargs)
    result = run_simulation(
        args.workload.upper(),
        config=_load_config(args),
        scheduler=args.scheduler,
        num_wavefronts=args.wavefronts,
        scale=args.scale,
        seed=args.seed,
        trace=trace_config,
        trace_path=args.out,
        trace_jsonl_path=args.jsonl,
    )
    with open(args.out, "r", encoding="utf-8") as handle:
        count = validate_chrome_trace(json.load(handle))
    print(result.summary())
    summary = result.detail["trace"]
    print(
        f"trace: {count} events written to {args.out} "
        f"({summary['events_emitted']} emitted, "
        f"{summary['events_dropped']} dropped from the ring)"
    )
    if args.jsonl:
        print(f"jsonl: {args.jsonl}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    if summary["events_dropped"] > 0:
        # Ring overflow is silent data loss for any per-walk analysis
        # downstream (blame, Fig. 3 histograms) — make it loud.
        print(
            f"warning: ring overflow dropped {summary['events_dropped']} "
            f"event(s); rerun with a larger --ring-size (currently "
            f"{trace_config.ring_size}) or fewer --categories for "
            "complete lifecycles",
            file=sys.stderr,
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    result = run_simulation(
        args.workload.upper(),
        config=_load_config(args),
        scheduler=args.scheduler,
        num_wavefronts=args.wavefronts,
        scale=args.scale,
        seed=args.seed,
        metrics=True,
        metrics_interval_events=args.interval,
    )
    dump = json.dumps(result.detail["metrics"], indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dump + "\n")
        print(result.summary())
        print(f"wrote {args.out}")
    else:
        print(dump)
    return 0


def _cmd_blame(args: argparse.Namespace) -> int:
    import json

    from repro.obs.attrib import (
        BLAME_REPORT_FORMAT,
        BLAME_REPORT_VERSION,
        blame_run_report,
        blame_sweep_report,
        blame_sweep_specs,
        iter_trace_events,
        render_blame_report,
    )

    if args.trace:
        # Analyze-existing-trace mode: no simulation, just attribution.
        events = iter_trace_events(args.trace)
        run = blame_run_report(events, top_k=args.top)
        document = {
            "format": BLAME_REPORT_FORMAT,
            "version": BLAME_REPORT_VERSION,
            "source": args.trace,
            "runs": [run],
            "reconciliation": dict(run["reconciliation"]),
        }
    else:
        from repro.experiments.runner import run_many

        workloads = [name.upper() for name in args.workloads.split(",")]
        schedulers = args.schedulers.split(",")
        sweep_kwargs = {}
        if args.ring_size is not None:
            sweep_kwargs["ring_size"] = args.ring_size
        specs = blame_sweep_specs(
            workloads,
            schedulers,
            seeds=range(args.seeds),
            config=_load_config(args),
            num_wavefronts=args.wavefronts,
            scale=args.scale,
            **sweep_kwargs,
        )
        results = run_many(specs, jobs=args.jobs)
        document = blame_sweep_report(specs, results, top_k=args.top)

    rendered = render_blame_report(document)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        if not args.quiet:
            print(f"wrote {args.out}")
    else:
        print(rendered)
    if not args.quiet:
        for scheduler, entry in sorted(
            document.get("by_scheduler", {}).items()
        ):
            shares = ", ".join(
                f"{stage}={share:.1%}"
                for stage, share in sorted(
                    entry["stage_shares"].items(),
                    key=lambda kv: -kv[1],
                )
                if share > 0
            )
            print(
                f"{scheduler}: {entry['walks_attributed']} walks — {shares}"
            )
    dropped = document.get("events_dropped", 0)
    if dropped:
        print(
            f"warning: ring overflow dropped {dropped} event(s); "
            "attribution is incomplete — raise --ring-size",
            file=sys.stderr,
        )
    reconciliation = document.get("reconciliation", {})
    if reconciliation.get("failures"):
        print(
            f"{reconciliation['failures']}/{reconciliation['checked']} "
            "walk(s) failed stage reconciliation",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.resilience.campaign import render_campaign, run_campaign

    with _make_telemetry(args) as telemetry:
        report = run_campaign(
            seed=args.seed,
            runs=args.runs,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            trace_dir=args.trace_dir,
            telemetry=telemetry,
        )
    rendered = render_campaign(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        if not args.quiet:
            print(f"wrote {args.output}")
    else:
        print(rendered)
    # Retries and timeouts are audit events even on a "green" campaign:
    # a silently re-run case must never look like a clean first pass.
    if report["retried"] or report["timed_out"]:
        print(
            f"campaign needed {report['retried']} retry attempt(s); "
            f"{report['timed_out']} case(s) timed out",
            file=sys.stderr,
        )
    if report["completed"] != report["runs"]:
        print(
            f"{report['runs'] - report['completed']}/{report['runs']} "
            "campaign cases failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_many_resilient
    from repro.obs.aggregate import (
        fleet_markdown,
        fleet_report,
        render_fleet_report,
        sweep_specs,
    )

    workloads = [name.upper() for name in args.workloads.split(",")]
    schedulers = args.schedulers.split(",")
    specs = sweep_specs(
        workloads,
        schedulers,
        seeds=range(args.seeds),
        config=_load_config(args),
        num_wavefronts=args.wavefronts,
        scale=args.scale,
        metrics=args.metrics,
    )
    with _make_telemetry(args) as telemetry:
        outcomes = run_many_resilient(
            specs,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            telemetry=telemetry,
        )
        summary = telemetry.summary() if telemetry is not None else None
    report = fleet_report(
        specs, outcomes,
        baseline_scheduler=args.baseline,
        telemetry_summary=summary,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_fleet_report(report) + "\n")
    rendered = fleet_markdown(report)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    if not args.quiet:
        print(rendered)
        print(f"wrote {args.out}")
        if args.markdown:
            print(f"wrote {args.markdown}")
    failed = report["failed"] + report["timeout"]
    if failed:
        print(
            f"{failed}/{report['specs']} fleet spec(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json

    from repro.obs.regress import (
        EXIT_OK,
        EXIT_REGRESSION,
        check_benches,
        render_check,
    )

    report = check_benches(
        baseline_dir=args.baseline_dir, current_dir=args.current_dir
    )
    # The exit-code contract (see repro.obs.regress): 0 = gate passed
    # (missing benches included), 1 = at least one regression.
    # --warn-only forces 0 but the JSON keeps the honest verdict.
    exit_code = EXIT_OK if report["ok"] else EXIT_REGRESSION
    report["exit_code"] = exit_code
    report["warn_only"] = bool(args.warn_only)
    if args.json:
        rendered_json = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            print(rendered_json, end="")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(rendered_json)
    rendered = render_check(report)
    if not args.quiet and args.json != "-":
        print(rendered)
    if not report["ok"]:
        if args.quiet:
            print(rendered, file=sys.stderr)
        if args.warn_only:
            print("bench-check: regressions found (warn-only)", file=sys.stderr)
            return EXIT_OK
        return exit_code
    return EXIT_OK


def _gather_campaign_inputs(paths):
    """Resolve CLI inputs into labelled reports + manifests (unique labels)."""
    from repro.obs.figures import load_campaign_input

    reports = []
    manifests = {}
    seen = {}
    for raw in paths:
        label, report, manifest = load_campaign_input(raw)
        seen[label] = seen.get(label, 0) + 1
        if seen[label] > 1:
            label = f"{label}-{seen[label]}"
        reports.append((label, report))
        manifests[label] = manifest
    return reports, manifests


def _cmd_figures(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.figures import (
        FIGURES,
        CampaignData,
        build_figures,
        emit_figures,
        figure_names,
    )
    from repro.obs.report import build_report_html

    if args.list:
        for name in figure_names():
            print(f"{name:24s}  {FIGURES[name].title}")
        return 0
    if not args.inputs:
        print(
            "figures: at least one campaign dir or fleet_report.json "
            "is required (or --list)",
            file=sys.stderr,
        )
        return 2
    reports, manifests = _gather_campaign_inputs(args.inputs)
    data = CampaignData.from_reports(reports, baseline=args.baseline)
    if args.out:
        out_dir = Path(args.out)
    else:
        first = Path(args.inputs[0])
        out_dir = (
            first / "report" / "figures" if first.is_dir() else Path("figures")
        )
    names = args.only.split(",") if args.only else None
    manifest = emit_figures(data, out_dir, names=names)
    gate = None
    if not args.no_gate:
        from repro.obs.regress import check_benches

        gate = check_benches(
            baseline_dir=args.baseline_dir, current_dir=args.current_dir
        )
    html_path = None
    if not args.no_html:
        figures, skipped = build_figures(data, names)
        html_path = (
            Path(args.html) if args.html else out_dir / "campaign_report.html"
        )
        html_path.write_text(
            build_report_html(
                reports, figures, skipped, gate=gate, manifests=manifests
            )
        )
    if not args.quiet:
        written = manifest["figures"]
        print(
            f"wrote {len(written)} figure(s) to {out_dir} "
            f"({len(manifest['skipped'])} skipped)"
        )
        for entry in written:
            print(f"  {entry['spec']}  [{entry['rows']} rows]")
        for name, reason in sorted(manifest["skipped"].items()):
            print(f"  skipped {name}: {reason}")
        if html_path is not None:
            print(f"wrote {html_path}")
        if gate is not None and not gate["ok"]:
            print(
                f"bench gate FAILED inside the report "
                f"({gate['regressions']} regression(s))",
                file=sys.stderr,
            )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.serve:
        if len(args.inputs) != 1:
            print(
                "report --serve watches exactly one campaign dir or "
                "fleet log",
                file=sys.stderr,
            )
            return 2
        from repro.obs.live import serve_dashboard

        server = serve_dashboard(
            args.inputs[0], host=args.host, port=args.port
        )
        host, port = server.server_address[:2]
        print(
            f"live dashboard: http://{host}:{port}/ "
            f"(watching {args.inputs[0]}, ctrl-c to stop)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    if not args.inputs:
        print(
            "report: at least one campaign dir or fleet_report.json "
            "is required",
            file=sys.stderr,
        )
        return 2
    from repro.obs.report import render_campaign_report

    reports, manifests = _gather_campaign_inputs(args.inputs)
    gate = None
    if not args.no_gate:
        from repro.obs.regress import check_benches

        gate = check_benches(
            baseline_dir=args.baseline_dir, current_dir=args.current_dir
        )
    html = render_campaign_report(
        reports, gate=gate, manifests=manifests, baseline=args.baseline
    )
    out_path = Path(args.out)
    out_path.write_text(html)
    if not args.quiet:
        print(f"wrote {out_path}")
    return 0


def _cmd_service_init(args: argparse.Namespace) -> int:
    from repro.service import init_campaign

    manifest = init_campaign(
        args.campaign_dir,
        workloads=[name.upper() for name in args.workloads.split(",")],
        schedulers=args.schedulers.split(","),
        seeds=args.seeds,
        scale=args.scale,
        num_wavefronts=args.wavefronts,
        metrics=args.metrics,
        baseline=args.baseline,
        config=_load_config(args),
        batch_size=args.batch_size,
    )
    if not args.quiet:
        print(
            f"campaign initialised in {args.campaign_dir}: "
            f"{len(manifest.spec_keys)} spec(s) in "
            f"{len(manifest.batches)} shard task(s)"
        )
    return 0


def _cmd_service_worker(args: argparse.Namespace) -> int:
    from repro.service import run_worker

    summary = run_worker(
        args.campaign_dir,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        max_tasks=args.max_tasks,
        inrun_checkpoint_every=args.checkpoint_every,
        progress=args.progress,
    )
    if not args.quiet:
        print(
            f"worker {summary['worker']} executed "
            f"{len(summary['tasks_executed'])} shard(s); "
            f"queue now {summary['queue']}"
        )
    return 0


def _cmd_service_run(args: argparse.Namespace) -> int:
    from repro.service import run_service

    summary = run_service(
        args.campaign_dir,
        workers=args.workers,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        worker_options={
            "inrun_checkpoint_every": args.checkpoint_every,
            "progress": args.progress,
        },
        allow_incomplete=args.allow_incomplete,
    )
    report = summary["merge"]["report"]
    if not args.quiet:
        print(
            f"campaign drained with {summary['spawned']} worker "
            f"spawn(s): {report['ok']} ok, {report['failed']} failed, "
            f"{report['timeout']} timed out"
        )
        print(f"report: {summary['merge']['paths']['full']}")
    return 0 if report["failed"] + report["timeout"] == 0 else 1


def _cmd_service_resume(args: argparse.Namespace) -> int:
    from repro.service import resume_campaign

    summary = resume_campaign(
        args.campaign_dir,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        force=args.force,
    )
    if not args.quiet:
        print(
            f"resume: re-queued {len(summary['requeued'])}, restored "
            f"{len(summary['restored'])}, abandoned "
            f"{len(summary['abandoned'])}; queue now {summary['queue']}"
        )
    if args.workers > 0:
        args.allow_incomplete = False
        return _cmd_service_run(args)
    return 0


def _cmd_service_status(args: argparse.Namespace) -> int:
    import json

    from repro.service import campaign_status

    status = campaign_status(args.campaign_dir)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status["drained"] and not status["abandoned"] else 1


def _cmd_service_merge(args: argparse.Namespace) -> int:
    from repro.service import merge_campaign

    merged = merge_campaign(
        args.campaign_dir, allow_incomplete=args.allow_incomplete
    )
    report = merged["report"]
    if not args.quiet:
        print(
            f"merged {report['specs']} spec(s): {report['ok']} ok, "
            f"{report['failed']} failed, {report['timeout']} timed out"
        )
        for name, path in sorted(merged["paths"].items()):
            print(f"{name}: {path}")
    return 0 if report["failed"] + report["timeout"] == 0 else 1


def _cmd_service_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.service import ChaosGateError, run_chaos

    try:
        summary = run_chaos(
            args.campaign_dir,
            seed=args.seed,
            workers=args.workers,
            workloads=[name.upper() for name in args.workloads.split(",")],
            schedulers=args.schedulers.split(","),
            seeds=args.seeds,
            scale=args.scale,
            num_wavefronts=args.wavefronts,
            max_kills=args.max_kills,
            restart_drill=not args.no_restart_drill,
            max_seconds=args.max_seconds,
            quiet=args.quiet,
        )
    except ChaosGateError as exc:
        print(f"chaos gate FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


_FIGURES = {
    "fig2": lambda a: report.render_grouped(
        "Fig 2: speedup over random",
        figures.fig2_scheduler_impact(a.scale, a.wavefronts),
    ),
    "fig3": lambda a: report.render_grouped(
        "Fig 3: walk-work distribution",
        figures.fig3_walk_work_distribution(a.scale, a.wavefronts),
    ),
    "fig5": lambda a: report.render_series(
        "Fig 5: interleaved fraction (FCFS)",
        figures.fig5_interleaving(a.scale, a.wavefronts),
    ),
    "fig6": lambda a: report.render_grouped(
        "Fig 6: first/last walk latency",
        figures.fig6_first_last_latency(a.scale, a.wavefronts),
    ),
    "fig8": lambda a: report.render_series(
        "Fig 8: SIMT-aware speedup over FCFS",
        figures.fig8_speedup(a.scale, a.wavefronts),
    ),
    "fig9": lambda a: report.render_series(
        "Fig 9: normalised CU stall cycles",
        figures.fig9_stall_cycles(a.scale, a.wavefronts),
    ),
    "fig10": lambda a: report.render_series(
        "Fig 10: normalised latency gap",
        figures.fig10_latency_gap(a.scale, a.wavefronts),
    ),
    "fig11": lambda a: report.render_series(
        "Fig 11: normalised page-walk count",
        figures.fig11_walk_count(a.scale, a.wavefronts),
    ),
    "fig12": lambda a: report.render_series(
        "Fig 12: normalised wavefronts per L2-TLB epoch",
        figures.fig12_active_wavefronts(a.scale, a.wavefronts),
    ),
    "fig13a": lambda a: report.render_series(
        "Fig 13a (1024 TLB, 8 walkers)",
        figures.fig13_sensitivity("a_1024tlb_8walkers", a.scale, a.wavefronts),
    ),
    "fig13b": lambda a: report.render_series(
        "Fig 13b (512 TLB, 16 walkers)",
        figures.fig13_sensitivity("b_512tlb_16walkers", a.scale, a.wavefronts),
    ),
    "fig13c": lambda a: report.render_series(
        "Fig 13c (1024 TLB, 16 walkers)",
        figures.fig13_sensitivity("c_1024tlb_16walkers", a.scale, a.wavefronts),
    ),
    "fig14a": lambda a: report.render_series(
        "Fig 14a (128-entry buffer)",
        figures.fig14_buffer_size(128, a.scale, a.wavefronts),
    ),
    "fig14b": lambda a: report.render_series(
        "Fig 14b (512-entry buffer)",
        figures.fig14_buffer_size(512, a.scale, a.wavefronts),
    ),
    "overhead": lambda a: report.render_series(
        "Translation overhead (FCFS vs oracle MMU)",
        figures.translation_overhead(a.scale, a.wavefronts),
    ),
    "table1": lambda a: report.render_table1(figures.table1_configuration()),
    "table2": lambda a: report.render_table2(figures.table2_workloads()),
}


def _cmd_qos(args: argparse.Namespace) -> int:
    from repro.experiments.multitenancy import qos_comparison

    results = qos_comparison(
        (args.workload_a.upper(), args.workload_b.upper()),
        schedulers=tuple(args.schedulers.split(",")),
        wavefronts_per_app=args.wavefronts_per_app,
        scale=args.scale,
        seed=args.seed,
    )
    for result in results.values():
        print(result.summary())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    try:
        renderer = _FIGURES[args.name]
    except KeyError:
        print(
            f"unknown figure {args.name!r}; one of: {', '.join(sorted(_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    print(renderer(args))
    return 0


def _add_verbosity_args(parser: argparse.ArgumentParser) -> None:
    """The shared ``--progress`` / ``--quiet`` / ``--fleet-log`` trio.

    ``--progress`` streams live per-spec fleet telemetry to stderr;
    ``--quiet`` suppresses informational stdout.  They compose —
    ``--progress --quiet`` is the "just show me the live ticker" mode —
    and either way failures are summarised on stderr and the exit code
    is nonzero.
    """
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream live per-spec fleet progress to stderr",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational stdout (failures still reach stderr "
        "and the exit code)",
    )
    parser.add_argument(
        "--fleet-log",
        default=None,
        help="append one JSON line per fleet event to this file",
    )


class _TelemetryScope:
    """Context manager yielding a FleetTelemetry (or None) per the args."""

    def __init__(self, args: argparse.Namespace) -> None:
        self._progress = getattr(args, "progress", False)
        self._log = getattr(args, "fleet_log", None)
        self._telemetry = None

    def __enter__(self):
        if not (self._progress or self._log):
            return None
        from repro.obs.fleet import FleetTelemetry

        self._telemetry = FleetTelemetry(
            log_path=self._log, progress=self._progress
        )
        return self._telemetry

    def __exit__(self, *_exc) -> None:
        if self._telemetry is not None:
            self._telemetry.close()


def _make_telemetry(args: argparse.Namespace) -> _TelemetryScope:
    return _TelemetryScope(args)


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--wavefronts", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--config",
        default=None,
        help="JSON machine description (possibly partial); see repro.config_io",
    )
    parser.add_argument(
        "--dram-controller",
        default=None,
        choices=("reservation", "fcfs", "frfcfs", "sms"),
        help="DRAM front end (default: the config's, reservation); "
        "'sms' is the staged batch-former/QoS policy",
    )


def _load_config(args: argparse.Namespace):
    config = None
    if getattr(args, "config", None) is not None:
        from repro.config_io import load_config

        config = load_config(args.config)
    controller = getattr(args, "dram_controller", None)
    if controller is not None:
        from repro.config import SystemConfig

        config = (config or SystemConfig()).with_dram_controller(controller)
    return config


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Scheduling Page Table Walks for "
        "Irregular GPU Applications' (ISCA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and schedulers").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload")
    run.add_argument(
        "--scheduler",
        default=None,
        choices=available_schedulers(),
        help="walk scheduler (default: the config's policy, fcfs)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="write an in-run checkpoint every N simulator events "
        "(requires --checkpoint-path)",
    )
    run.add_argument(
        "--checkpoint-path",
        default=None,
        help="where the in-run checkpoint file is (over)written",
    )
    _add_run_args(run)
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted simulation from an in-run checkpoint",
    )
    resume.add_argument("checkpoint", help="checkpoint file written by run")
    resume.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="override the original run's cycle budget",
    )
    resume.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="keep checkpointing every N events (rewrites the same file)",
    )
    resume.set_defaults(func=_cmd_resume)

    compare = sub.add_parser("compare", help="compare schedulers on a workload")
    compare.add_argument("workload")
    compare.add_argument(
        "--schedulers", default="fcfs,simt", help="comma-separated policy names"
    )
    compare.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the scheduler sweep (1 = serial; "
        "results are identical either way)",
    )
    compare.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per job (runs in an isolated "
        "worker process; overdue workers are terminated)",
    )
    compare.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts for a crashed/failed/timed-out job",
    )
    _add_run_args(compare)
    _add_verbosity_args(compare)
    compare.set_defaults(func=_cmd_compare)

    faults = sub.add_parser(
        "faults", help="run a seeded, deterministic fault-injection campaign"
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--runs", type=int, default=6)
    faults.add_argument("--jobs", type=int, default=1)
    faults.add_argument("--timeout", type=float, default=None)
    faults.add_argument("--retries", type=int, default=0)
    faults.add_argument(
        "--output", default=None, help="write the JSON report here instead of stdout"
    )
    faults.add_argument(
        "--trace-dir",
        default=None,
        help="also write one Perfetto trace per case into this directory",
    )
    _add_verbosity_args(faults)
    faults.set_defaults(func=_cmd_faults)

    fleet = sub.add_parser(
        "fleet-report",
        help="run a workload×scheduler×seed sweep and aggregate a fleet report",
    )
    fleet.add_argument(
        "--workloads", default="MVT,XSB",
        help="comma-separated Table II abbreviations",
    )
    fleet.add_argument(
        "--schedulers", default="fcfs,simt",
        help="comma-separated policy names",
    )
    fleet.add_argument(
        "--seeds", type=int, default=2,
        help="seeds per (workload, scheduler) cell: 0..N-1",
    )
    fleet.add_argument(
        "--baseline", default="fcfs",
        help="scheduler every speedup is measured against",
    )
    fleet.add_argument("--scale", type=float, default=0.1)
    fleet.add_argument("--wavefronts", type=int, default=8)
    fleet.add_argument("--jobs", type=int, default=1)
    fleet.add_argument("--timeout", type=float, default=None)
    fleet.add_argument("--retries", type=int, default=0)
    fleet.add_argument(
        "--metrics", action="store_true",
        help="sample per-run MetricsRegistry dumps and merge them per scheduler",
    )
    fleet.add_argument(
        "--config",
        default=None,
        help="JSON machine description (possibly partial); see repro.config_io",
    )
    fleet.add_argument(
        "--out", default="fleet_report.json",
        help="where to write the aggregated JSON report",
    )
    fleet.add_argument(
        "--markdown", default=None,
        help="also write the markdown rendering here",
    )
    _add_verbosity_args(fleet)
    fleet.set_defaults(func=_cmd_fleet_report)

    bench_check = sub.add_parser(
        "bench-check",
        help="gate current BENCH_*.json numbers against committed baselines",
    )
    bench_check.add_argument(
        "--baseline-dir", default="benchmarks/baselines",
        help="directory holding the committed baseline BENCH_*.json files",
    )
    bench_check.add_argument(
        "--current-dir", default=".",
        help="directory holding the current BENCH_*.json files",
    )
    bench_check.add_argument(
        "--json", default=None,
        help="also write the gate report as JSON here ('-' for stdout); "
        "the report carries the exit_code the process returns",
    )
    bench_check.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (for gate tuning)",
    )
    bench_check.add_argument(
        "--quiet", action="store_true",
        help="print nothing unless the gate fails",
    )
    bench_check.set_defaults(func=_cmd_bench_check)

    trace = sub.add_parser(
        "trace", help="simulate with lifecycle tracing; write a Perfetto trace"
    )
    trace.add_argument("workload")
    trace.add_argument(
        "--scheduler",
        default=None,
        choices=available_schedulers(),
        help="walk scheduler (default: the config's policy, fcfs)",
    )
    trace.add_argument(
        "--out", default="trace.json",
        help="Chrome/Perfetto trace_event JSON output path",
    )
    trace.add_argument(
        "--jsonl", default=None, help="also write raw events as JSON lines"
    )
    trace.add_argument(
        "--categories",
        default=None,
        help="comma-separated event categories to record "
        "(default: all; see repro.obs.trace.TRACE_CATEGORIES)",
    )
    trace.add_argument(
        "--ring-size", type=int, default=None,
        help="trace ring-buffer capacity in events",
    )
    _add_run_args(trace)
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="simulate with the live metrics registry sampling"
    )
    metrics.add_argument("workload")
    metrics.add_argument(
        "--scheduler",
        default=None,
        choices=available_schedulers(),
        help="walk scheduler (default: the config's policy, fcfs)",
    )
    metrics.add_argument(
        "--interval", type=int, default=10_000,
        help="sample the registry every this many fired events",
    )
    metrics.add_argument(
        "--out", default=None, help="write the metrics JSON here instead of stdout"
    )
    _add_run_args(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    blame = sub.add_parser(
        "blame",
        help="walk-latency attribution: stage breakdowns, critical "
        "paths, per-scheduler blame shares",
    )
    blame.add_argument(
        "--trace",
        default=None,
        help="analyze an existing Chrome-trace JSON or JSONL event "
        "stream instead of running a sweep",
    )
    blame.add_argument(
        "--workloads", default="MVT", help="comma-separated workload names"
    )
    blame.add_argument(
        "--schedulers",
        default="fcfs,simt",
        help="comma-separated policy names",
    )
    blame.add_argument(
        "--seeds", type=int, default=1, help="seeds 0..N-1 per case"
    )
    blame.add_argument("--scale", type=float, default=0.1)
    blame.add_argument("--wavefronts", type=int, default=8)
    blame.add_argument("--jobs", type=int, default=1)
    blame.add_argument(
        "--ring-size",
        type=int,
        default=None,
        help="tracer ring size for sweep runs (default: the blame "
        "default, large enough for complete lifecycles)",
    )
    blame.add_argument(
        "--top", type=int, default=5, help="outlier walk digests to keep"
    )
    blame.add_argument(
        "--config",
        default=None,
        help="JSON machine description (possibly partial)",
    )
    blame.add_argument(
        "--out",
        default=None,
        help="write the blame report JSON here instead of stdout",
    )
    blame.add_argument("--quiet", action="store_true")
    blame.set_defaults(func=_cmd_blame)

    figure = sub.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("name", help="e.g. fig8, fig13a, table2")
    _add_run_args(figure)
    figure.set_defaults(func=_cmd_figure)

    figures = sub.add_parser(
        "figures",
        help="render the figure registry (Vega-Lite + CSV) from fleet reports",
    )
    figures.add_argument(
        "inputs", nargs="*",
        help="campaign dir(s) (merged with `service merge`) and/or "
        "fleet_report.json file(s); several inputs plot side by side",
    )
    figures.add_argument(
        "--out", default=None,
        help="output directory (default: <campaign>/report/figures)",
    )
    figures.add_argument(
        "--only", default=None,
        help="comma-separated figure names (default: every registered figure)",
    )
    figures.add_argument(
        "--list", action="store_true", help="list registered figures and exit"
    )
    figures.add_argument(
        "--html", default=None,
        help="HTML campaign report path (default: <out>/campaign_report.html)",
    )
    figures.add_argument(
        "--no-html", action="store_true",
        help="emit only the specs/CSVs, skip the HTML report",
    )
    figures.add_argument(
        "--no-gate", action="store_true",
        help="skip the bench-check verdict section in the HTML report",
    )
    figures.add_argument(
        "--baseline", default=None,
        help="override the baseline scheduler (default: the report's)",
    )
    figures.add_argument("--baseline-dir", default="benchmarks/baselines")
    figures.add_argument("--current-dir", default=".")
    figures.add_argument("--quiet", action="store_true")
    figures.set_defaults(func=_cmd_figures)

    report = sub.add_parser(
        "report",
        help="HTML campaign report, or --serve for the live sweep dashboard",
    )
    report.add_argument(
        "inputs", nargs="*",
        help="campaign dir(s) / fleet_report.json file(s); with --serve, "
        "one campaign dir or fleet telemetry JSONL to watch",
    )
    report.add_argument(
        "--out", default="campaign_report.html",
        help="HTML output path (static mode)",
    )
    report.add_argument(
        "--serve", action="store_true",
        help="serve a live dashboard tailing the campaign's telemetry logs",
    )
    report.add_argument("--host", default="127.0.0.1")
    report.add_argument(
        "--port", type=int, default=8377, help="dashboard port (0 = ephemeral)"
    )
    report.add_argument("--no-gate", action="store_true")
    report.add_argument(
        "--baseline", default=None,
        help="override the baseline scheduler (default: the report's)",
    )
    report.add_argument("--baseline-dir", default="benchmarks/baselines")
    report.add_argument("--current-dir", default=".")
    report.add_argument("--quiet", action="store_true")
    report.set_defaults(func=_cmd_report)

    qos = sub.add_parser(
        "qos", help="co-run two workloads and compare QoS across schedulers"
    )
    qos.add_argument("workload_a")
    qos.add_argument("workload_b")
    qos.add_argument(
        "--schedulers", default="fcfs,simt,fairshare",
        help="comma-separated policy names",
    )
    qos.add_argument("--wavefronts-per-app", type=int, default=24)
    qos.add_argument("--scale", type=float, default=0.3)
    qos.add_argument("--seed", type=int, default=0)
    qos.set_defaults(func=_cmd_qos)

    service = sub.add_parser(
        "service",
        help="durable work-queue sweep service (broker/worker campaigns)",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)

    def _campaign_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("campaign_dir", help="campaign directory (the durable state)")
        p.add_argument("--quiet", action="store_true")

    def _lease_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--lease-ttl", type=float, default=30.0,
            help="seconds of missed heartbeats before a lease is reaped",
        )
        p.add_argument(
            "--max-attempts", type=int, default=5,
            help="claims per shard before it is abandoned as a poison task",
        )

    def _sweep_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workloads", default="MVT,XSB")
        p.add_argument("--schedulers", default="fcfs,simt")
        p.add_argument("--seeds", type=int, default=2)
        p.add_argument("--scale", type=float, default=0.1)
        p.add_argument("--wavefronts", type=int, default=8)

    svc_init = service_sub.add_parser(
        "init", help="shard a sweep into a campaign manifest + queue"
    )
    _campaign_arg(svc_init)
    _sweep_args(svc_init)
    svc_init.add_argument("--baseline", default="fcfs")
    svc_init.add_argument(
        "--batch-size", type=int, default=2, help="specs per shard task"
    )
    svc_init.add_argument("--metrics", action="store_true")
    svc_init.add_argument(
        "--config", default=None,
        help="JSON machine description (possibly partial); see repro.config_io",
    )
    svc_init.set_defaults(func=_cmd_service_init)

    svc_worker = service_sub.add_parser(
        "worker", help="drain the campaign queue from this process"
    )
    _campaign_arg(svc_worker)
    _lease_args(svc_worker)
    svc_worker.add_argument(
        "--worker-id", default=None, help="default: hostname-pid"
    )
    svc_worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after claiming this many shards (default: until drained)",
    )
    svc_worker.add_argument(
        "--checkpoint-every", type=int, default=2000,
        help="in-run checkpoint cadence in simulator events",
    )
    svc_worker.add_argument("--progress", action="store_true")
    svc_worker.set_defaults(func=_cmd_service_worker)

    def _run_pool_args(p: argparse.ArgumentParser) -> None:
        _lease_args(p)
        p.add_argument(
            "--workers", type=int, default=2,
            help="local worker processes to supervise",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=2000,
            help="in-run checkpoint cadence in simulator events",
        )
        p.add_argument("--progress", action="store_true")
        p.add_argument(
            "--allow-incomplete", action="store_true",
            help="merge reports un-run specs as failures instead of erroring",
        )

    svc_run = service_sub.add_parser(
        "run", help="supervise local workers until the queue drains, then merge"
    )
    _campaign_arg(svc_run)
    _run_pool_args(svc_run)
    svc_run.set_defaults(func=_cmd_service_run)

    svc_resume = service_sub.add_parser(
        "resume", help="repair a campaign after crashes or a full restart"
    )
    _campaign_arg(svc_resume)
    _run_pool_args(svc_resume)
    svc_resume.add_argument(
        "--force", action="store_true",
        help="treat every lease as stale (use after a full cluster restart)",
    )
    svc_resume.set_defaults(func=_cmd_service_resume)

    svc_status = service_sub.add_parser(
        "status", help="print campaign progress (exit 1 until drained clean)"
    )
    _campaign_arg(svc_status)
    svc_status.set_defaults(func=_cmd_service_status)

    svc_merge = service_sub.add_parser(
        "merge", help="fold shard results into the deterministic fleet report"
    )
    _campaign_arg(svc_merge)
    svc_merge.add_argument(
        "--allow-incomplete", action="store_true",
        help="report un-run specs as failures instead of erroring",
    )
    svc_merge.set_defaults(func=_cmd_service_merge)

    svc_chaos = service_sub.add_parser(
        "chaos",
        help="SIGKILL workers mid-spec; gate on a byte-identical merged report",
    )
    _campaign_arg(svc_chaos)
    svc_chaos.add_argument("--seed", type=int, default=0)
    svc_chaos.add_argument("--workers", type=int, default=2)
    svc_chaos.add_argument("--workloads", default="MVT")
    svc_chaos.add_argument("--schedulers", default="fcfs,simt")
    svc_chaos.add_argument("--seeds", type=int, default=3)
    svc_chaos.add_argument("--scale", type=float, default=0.3)
    svc_chaos.add_argument("--wavefronts", type=int, default=24)
    svc_chaos.add_argument(
        "--max-kills", type=int, default=None,
        help="individual worker kills before the restart drill (default: workers+2)",
    )
    svc_chaos.add_argument(
        "--no-restart-drill", action="store_true",
        help="skip the kill-everything-and-resume drill",
    )
    svc_chaos.add_argument("--max-seconds", type=float, default=240.0)
    svc_chaos.set_defaults(func=_cmd_service_chaos)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
