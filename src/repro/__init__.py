"""repro — a reproduction of "Scheduling Page Table Walks for Irregular
GPU Applications" (Shin et al., ISCA 2018).

The package provides:

* a discrete-event simulator of a GPU's address-translation path
  (TLB hierarchy → IOMMU → page-table walkers → DRAM);
* the paper's contribution — a SIMT-aware page-table walk scheduler —
  plus the FCFS/random baselines and single-idea ablations;
* synthetic models of the paper's twelve benchmarks (Table II);
* an experiment harness that regenerates every figure and table.

Quickstart::

    from repro import compare_schedulers

    results = compare_schedulers("MVT", schedulers=("fcfs", "simt"))
    print(results["simt"].speedup_over(results["fcfs"]))
"""

from repro.config import (
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    PWCConfig,
    SystemConfig,
    TLBConfig,
    baseline_config,
)
from repro.core import (
    FCFSScheduler,
    RandomScheduler,
    SIMTAwareScheduler,
    available_schedulers,
    make_scheduler,
)
from repro.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.engine.checkpoint import CheckpointError
from repro.experiments.runner import (
    build_system,
    compare_schedulers,
    restore_system,
    resume_simulation,
    run_many,
    run_many_resilient,
    run_simulation,
    scheduler_sweep_specs,
    snapshot_system,
)
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    TraceConfig,
    Tracer,
    build_tracer,
    validate_chrome_trace,
)
from repro.resilience import (
    DeadlockDiagnosis,
    FaultEvent,
    FaultPlan,
    RunOutcome,
    SpecExecutionError,
    Watchdog,
    WatchdogError,
    run_campaign,
)
from repro.stats.metrics import SimulationResult, geometric_mean
from repro.workloads import (
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    all_workloads,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "DRAMConfig",
    "DeadlockDiagnosis",
    "FCFSScheduler",
    "FaultEvent",
    "FaultPlan",
    "GPUConfig",
    "IOMMUConfig",
    "IRREGULAR_WORKLOADS",
    "MetricsRegistry",
    "PWCConfig",
    "PhaseProfiler",
    "RandomScheduler",
    "REGULAR_WORKLOADS",
    "RunOutcome",
    "SIMTAwareScheduler",
    "SimulationResult",
    "SpecExecutionError",
    "SystemConfig",
    "TLBConfig",
    "TraceConfig",
    "Tracer",
    "Watchdog",
    "WatchdogError",
    "all_workloads",
    "available_schedulers",
    "baseline_config",
    "build_system",
    "build_tracer",
    "compare_schedulers",
    "config_from_dict",
    "config_to_dict",
    "geometric_mean",
    "load_config",
    "save_config",
    "get_workload",
    "make_scheduler",
    "restore_system",
    "resume_simulation",
    "run_campaign",
    "run_many",
    "run_many_resilient",
    "run_simulation",
    "scheduler_sweep_specs",
    "snapshot_system",
    "validate_chrome_trace",
    "workload_names",
    "__version__",
]
