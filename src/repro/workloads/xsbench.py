"""XSBench: the DoE Monte Carlo neutron-transport proxy application.

XSBench's hot loop computes macroscopic cross-sections: every particle
samples a random energy, *binary-searches* the unionized energy grid for
the bracketing gridpoint, then gathers per-nuclide data at data-dependent
offsets.  Two properties matter for address translation:

* The early binary-search probes land on a small set of pages (the upper
  levels of the implicit search tree are shared by every lookup), giving
  partial TLB locality that heavy translation traffic can thrash away.
* The final gathers are effectively uniform-random over a ~210 MB grid:
  64 lanes, 64 unrelated pages — the paper's worst-divergence pattern.

The mix yields SIMD instructions whose translation work ranges from
"free" (search root, TLB-hot) to 64 walks of 4 accesses each, which is
exactly the variance a shortest-job-first walk scheduler exploits.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.workloads.base import Trace, WavefrontTrace, Workload
from repro.workloads.synthetic import coalesced

DOUBLE = 8
PAGE = 4096

#: Binary-search probe levels: (distinct pages per instruction,
#: hot-set size in pages).  Level k of a binary search over the grid can
#: touch at most 2^(k-1) distinct pages; the deepest modelled level's hot
#: set (400 pages) exceeds the baseline 512-entry GPU L2 TLB, so its
#: locality survives only when the TLBs are not being thrashed — the
#: mechanism behind the paper's Fig 11 walk-count reduction.
SEARCH_LEVELS: Tuple[Tuple[int, int], ...] = ((1, 2), (4, 64), (16, 400))

#: Distinct pages per final nuclide gather, drawn from a 4096-page
#: working subset of the grid (lookup energies cluster around resonance
#: regions rather than covering all 54k grid pages uniformly).
GATHER_PAGES = 48
GATHER_SET_PAGES = 4096


class XSBench(Workload):
    """Monte Carlo neutronics cross-section lookup kernel."""

    abbrev = "XSB"
    name = "Xsbench"
    description = "Monte Carlo neutronics application"
    nominal_footprint_mb = 212.25
    irregular = True
    suite = "DOE proxy"

    #: Grid lookups per wavefront; each emits one instruction per search
    #: level plus the final random gather.
    lookups_per_wavefront = 10

    def _layout(self) -> None:
        # The unionized energy grid dominates the footprint; particle
        # state is a small, contiguous, streamed array.
        self.grid = self.address_space.allocate(
            "unionized_grid", int(210.0 * 1024 * 1024)
        )
        self.particles = self.address_space.allocate(
            "particles", int(2.2 * 1024 * 1024)
        )

    def _search_instruction(
        self,
        rng: random.Random,
        pages_per_instruction: int,
        hot_set_pages: int,
        wavefront_size: int,
    ) -> List[int]:
        """One binary-search probe: lanes spread over the level's hot set."""
        total_pages = self.grid.pages
        stride = max(1, total_pages // hot_set_pages)
        addresses: List[int] = []
        for lane in range(wavefront_size):
            # Lanes cluster: `pages_per_instruction` distinct probe pages,
            # each drawn from the level's evenly-spaced hot positions.
            slot = rng.randrange(hot_set_pages) if lane % (
                wavefront_size // pages_per_instruction or 1
            ) == 0 else None
            if slot is not None:
                page = (slot * stride) % total_pages
                current_page = page
            addresses.append(
                self.grid.base + current_page * PAGE + (lane * 64) % PAGE
            )
        return addresses

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        lookups = self.scaled(self.lookups_per_wavefront)
        total_pages = self.grid.pages
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            rng = random.Random(f"{self.seed}:{wavefront_index}")
            stream: WavefrontTrace = []
            particle_cursor = (wavefront_index * wavefront_size) % (
                self.particles.size // DOUBLE - wavefront_size
            )
            for _ in range(lookups):
                # Coalesced particle-state read (energy/material sample).
                stream.append(
                    coalesced(self.particles, particle_cursor, wavefront_size, DOUBLE)
                )
                # Binary-search probes, shallow to deep.
                for pages_per_instruction, hot_set in SEARCH_LEVELS:
                    stream.append(
                        self._search_instruction(
                            rng, pages_per_instruction, hot_set, wavefront_size
                        )
                    )
                # Final nuclide gather: lanes pair up on GATHER_PAGES
                # unrelated pages of the gather working set.
                gather_stride = max(1, total_pages // GATHER_SET_PAGES)
                pages = [
                    (rng.randrange(GATHER_SET_PAGES) * gather_stride) % total_pages
                    for _ in range(GATHER_PAGES)
                ]
                stream.append(
                    [
                        self.grid.base
                        + pages[lane % GATHER_PAGES] * PAGE
                        + (lane * 64) % PAGE
                        for lane in range(wavefront_size)
                    ]
                )
            trace.append(stream)
        return trace
