"""Workload infrastructure: address-space layout and the generator API.

A *trace* is ``List[WavefrontTrace]``; a ``WavefrontTrace`` is the
ordered list of SIMD memory instructions one wavefront executes; each
instruction is simply the list of per-lane virtual addresses (plain ints,
for speed).  The coalescer in :mod:`repro.gpu.coalescer` does the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.config import PAGE_SIZE

LaneAddresses = List[int]
WavefrontTrace = List[LaneAddresses]
Trace = List[WavefrontTrace]

#: Data arrays start here, well clear of the (unmodelled) code segment.
DEFAULT_HEAP_BASE = 0x1000_0000


class MemoryRegion:
    """A named, page-aligned virtual allocation (one program array)."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name: str, base: int, size: int) -> None:
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def pages(self) -> int:
        return (self.size + PAGE_SIZE - 1) // PAGE_SIZE

    def element(self, index: int, element_size: int = 8) -> int:
        """Virtual address of element ``index`` (bounds-checked)."""
        address = self.base + index * element_size
        if not self.base <= address < self.end:
            raise IndexError(
                f"{self.name}[{index}] (elem {element_size}B) outside region"
            )
        return address

    def __repr__(self) -> str:
        return f"MemoryRegion({self.name!r}, base={self.base:#x}, size={self.size})"


class VirtualAddressSpace:
    """Lays out a benchmark's arrays in virtual memory, page-aligned."""

    def __init__(self, base: int = DEFAULT_HEAP_BASE) -> None:
        self._next = base
        self.regions: Dict[str, MemoryRegion] = {}

    def allocate(self, name: str, size: int) -> MemoryRegion:
        """Reserve ``size`` bytes (rounded up to whole pages)."""
        if size <= 0:
            raise ValueError(f"allocation {name!r} must have positive size")
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        region = MemoryRegion(name, self._next, pages * PAGE_SIZE)
        # A guard page between arrays keeps off-by-one strides visible.
        self._next = region.end + PAGE_SIZE
        self.regions[name] = region
        return region

    @property
    def total_bytes(self) -> int:
        return sum(region.size for region in self.regions.values())

    @property
    def footprint_mb(self) -> float:
        return self.total_bytes / (1024 * 1024)


class Workload(ABC):
    """A benchmark model (one row of the paper's Table II).

    Subclasses declare the paper-reported metadata as class attributes and
    implement :meth:`build_trace`.  ``scale`` shrinks the *slice of
    execution* that is simulated (wavefronts × instructions), never the
    nominal array sizes, so the address-space shape — and hence TLB/PWC
    pressure per instruction — stays faithful while runtime stays bounded.
    """

    #: Table II abbreviation, e.g. "MVT".
    abbrev: str = ""
    #: Full benchmark name.
    name: str = ""
    #: One-line description from Table II.
    description: str = ""
    #: Memory footprint reported in Table II (MB).
    nominal_footprint_mb: float = 0.0
    #: Whether the paper classifies it as irregular.
    irregular: bool = False
    #: Benchmark suite of origin.
    suite: str = ""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.address_space = VirtualAddressSpace()
        self._layout()

    @abstractmethod
    def _layout(self) -> None:
        """Allocate the benchmark's arrays into :attr:`address_space`."""

    @abstractmethod
    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate the per-wavefront instruction streams."""

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an iteration count, keeping at least ``minimum``."""
        return max(minimum, int(round(value * self.scale)))

    @property
    def modelled_footprint_mb(self) -> float:
        """Footprint of the modelled address space (should track Table II)."""
        return self.address_space.footprint_mb

    def __repr__(self) -> str:
        return f"{type(self).__name__}(abbrev={self.abbrev!r}, scale={self.scale})"
