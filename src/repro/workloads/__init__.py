"""Synthetic GPU workload generators modelling the paper's benchmarks.

The paper runs twelve unmodified OpenCL/HCC applications on gem5
(Table II).  We cannot execute OpenCL here, so each benchmark is modelled
by a generator that emits the memory-access *trace* its GPU kernels
produce: per-wavefront sequences of SIMD memory instructions with the
benchmark's characteristic divergence, footprint and reuse pattern.
See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.base import MemoryRegion, VirtualAddressSpace, Workload
from repro.workloads.registry import (
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = [
    "IRREGULAR_WORKLOADS",
    "MemoryRegion",
    "REGULAR_WORKLOADS",
    "VirtualAddressSpace",
    "Workload",
    "all_workloads",
    "get_workload",
    "workload_names",
]
