"""Rodinia benchmark models: NW (irregular), Back-prop, K-Means, Hotspot.

NW (Needleman-Wunsch) fills a huge dynamic-programming matrix along
anti-diagonals; consecutive workitems process cells one row apart, so a
SIMD instruction's lanes stride by roughly a full matrix row — divergent,
with a 531.82 MB footprint.

Back-propagation, K-Means and Hotspot are the paper's *regular* Rodinia
workloads: unit-stride streaming (BCK), small-footprint re-scanned
clustering data (KMN) and a row-stencil (HOT).  They coalesce almost
perfectly, generate little translation traffic, and serve as the paper's
"do no harm" control group (Fig 8, right half).
"""

from __future__ import annotations

from repro.workloads.base import Trace, WavefrontTrace, Workload
from repro.workloads.synthetic import coalesced

INT = 4
DOUBLE = 8


class NW(Workload):
    """Needleman-Wunsch DNA sequence alignment (anti-diagonal sweep)."""

    abbrev = "NW"
    name = "NW"
    description = "Optimization algorithm for DNA sequence alignments"
    nominal_footprint_mb = 531.82
    irregular = True
    suite = "Rodinia"

    #: DP-matrix dimension: two int matrices of n² ≈ 537 MB total
    #: (Table II: 531.82 MB).  Rows are a whole number of pages, so the
    #: anti-diagonal front crosses page boundaries for all lanes at the
    #: same step — a periodic walk burst amid cheap TLB-hot steps.
    n = 8192
    #: The GPU port processes 16×16 tiles: a wavefront's 64 lanes cover a
    #: 16-row × 4-column patch of the anti-diagonal front, touching 16
    #: distinct rows (pages) at a time.
    tile_rows = 16
    diagonals_per_wavefront = 40
    #: Columns the diagonal front advances per modelled step.  A page
    #: holds 1024 ints, so the 16-page working set is reused for
    #: ``1024 / diagonal_step`` consecutive steps before a 16-walk burst.
    diagonal_step = 256

    def _layout(self) -> None:
        self.score = self.address_space.allocate("score", self.n * self.n * INT)
        self.reference = self.address_space.allocate(
            "reference", self.n * self.n * INT
        )

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        diagonals = self.scaled(self.diagonals_per_wavefront)
        trace: Trace = []
        n = self.n
        tile_rows = self.tile_rows
        tile_cols = wavefront_size // tile_rows
        span = tile_cols + tile_rows + diagonals * self.diagonal_step
        for wavefront_index in range(num_wavefronts):
            stream: WavefrontTrace = []
            # Each wavefront owns a 16-row band and walks its tile along
            # the anti-diagonal: lane l works on cell
            # (i0 + l%16, j0 + l//16 - l%16).
            base_i = (wavefront_index * tile_rows) % (n - tile_rows)
            j_base = tile_rows + (wavefront_index * 23) % max(1, n - span - 1)
            for step in range(diagonals):
                j0 = j_base + step * self.diagonal_step
                for region in (self.reference, self.score):
                    addresses = [
                        region.element(
                            (base_i + lane % tile_rows) * n
                            + (j0 + lane // tile_rows - lane % tile_rows),
                            INT,
                        )
                        for lane in range(wavefront_size)
                    ]
                    stream.append(addresses)
            trace.append(stream)
        return trace


class BackProp(Workload):
    """Neural-network back-propagation: unit-stride weight streaming."""

    abbrev = "BCK"
    name = "Back Prop."
    description = "Machine learning algorithm"
    nominal_footprint_mb = 108.03
    irregular = False
    suite = "Rodinia"

    instructions_per_wavefront = 80

    def _layout(self) -> None:
        self.weights = self.address_space.allocate(
            "weights", int(107.0 * 1024 * 1024)
        )
        self.units = self.address_space.allocate("units", int(1.0 * 1024 * 1024))

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        instructions = self.scaled(self.instructions_per_wavefront)
        elements = self.weights.size // DOUBLE
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            stream: WavefrontTrace = []
            # Wavefronts partition the weight matrix and stream through
            # their slice with perfectly coalesced accesses.
            slice_base = (wavefront_index * elements // max(1, num_wavefronts)) % (
                elements - wavefront_size * (instructions + 1)
            )
            for step in range(instructions):
                stream.append(
                    coalesced(
                        self.weights,
                        slice_base + step * wavefront_size,
                        wavefront_size,
                        DOUBLE,
                    )
                )
            trace.append(stream)
        return trace


class KMeans(Workload):
    """K-Means clustering: a small feature array re-scanned every pass."""

    abbrev = "KMN"
    name = "K-Means"
    description = "Clustering algorithm"
    nominal_footprint_mb = 4.33
    irregular = False
    suite = "Rodinia"

    passes = 12
    instructions_per_pass = 8

    def _layout(self) -> None:
        self.features = self.address_space.allocate(
            "features", int(4.2 * 1024 * 1024)
        )
        self.centroids = self.address_space.allocate(
            "centroids", int(0.1 * 1024 * 1024)
        )

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        passes = self.scaled(self.passes)
        per_pass = self.instructions_per_pass
        elements = self.features.size // DOUBLE
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            stream: WavefrontTrace = []
            slice_base = (wavefront_index * elements // max(1, num_wavefronts)) % (
                elements - wavefront_size * (per_pass + 1)
            )
            for _ in range(passes):
                # The same slice is re-read each clustering iteration —
                # after the first pass, translations all hit the TLBs.
                for step in range(per_pass):
                    stream.append(
                        coalesced(
                            self.features,
                            slice_base + step * wavefront_size,
                            wavefront_size,
                            DOUBLE,
                        )
                    )
                stream.append(coalesced(self.centroids, 0, wavefront_size, DOUBLE))
            trace.append(stream)
        return trace


class Hotspot(Workload):
    """Hotspot thermal simulation: a three-row stencil sweep."""

    abbrev = "HOT"
    name = "Hotspot"
    description = "Processor thermal simulation algorithm"
    nominal_footprint_mb = 12.02
    irregular = False
    suite = "Rodinia"

    #: Grid dimension: two float grids of n² ≈ 12 MB.
    n = 1224
    #: Row blocks processed per wavefront; each sweeps the row in
    #: 64-column tiles, so one row's pages are reused ~n/64 times.
    row_blocks_per_wavefront = 10

    def _layout(self) -> None:
        self.temp = self.address_space.allocate("temp", self.n * self.n * INT)
        self.power = self.address_space.allocate("power", self.n * self.n * INT)

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        row_blocks = self.scaled(self.row_blocks_per_wavefront)
        n = self.n
        tiles = max(1, (n - wavefront_size) // wavefront_size)
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            stream: WavefrontTrace = []
            base_row = 1 + (wavefront_index * row_blocks) % (n - row_blocks - 2)
            for block in range(row_blocks):
                row = base_row + block
                # Sweep the row left to right in 64-column tiles: lanes
                # coalesce, and each of the row's ~1.2 pages is reused by
                # ~16 consecutive tiles, so translations stay TLB-hot.
                for tile in range(tiles):
                    column = tile * wavefront_size
                    for offset in (-1, 0, 1):
                        stream.append(
                            coalesced(
                                self.temp,
                                (row + offset) * n + column,
                                wavefront_size,
                                INT,
                            )
                        )
                    stream.append(
                        coalesced(self.power, row * n + column, wavefront_size, INT)
                    )
            trace.append(stream)
        return trace
