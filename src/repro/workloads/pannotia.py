"""Pannotia graph-analytics models: SSSP, MIS, Color.

Pannotia kernels process graphs in CSR form.  Although graph analytics is
irregular *in general*, the paper's measurements put these three inputs
in the regular, translation-insensitive group: frontier nodes are handled
by consecutive lanes (coalesced offset/property reads) and their edge
lists are contiguous runs of the edge array, so lanes mostly touch a
handful of pages per instruction.  We model exactly that: coalesced node
sweeps plus short-span edge gathers with bounded page divergence.
"""

from __future__ import annotations

import random

from repro.workloads.base import Trace, WavefrontTrace, Workload
from repro.workloads.synthetic import coalesced

INT = 4


class _CSRGraphWorkload(Workload):
    """Shared CSR traversal machinery for the Pannotia models."""

    #: Total CSR footprint to model (MB), split edges vs node arrays.
    footprint_mb = 100.0
    iterations_per_wavefront = 72
    #: Pages a single edge-gather instruction may straddle (low: these
    #: inputs behave regularly per the paper).
    edge_span_pages = 3

    def _layout(self) -> None:
        edge_bytes = int(self.footprint_mb * 0.8 * 1024 * 1024)
        node_bytes = int(self.footprint_mb * 0.2 * 1024 * 1024)
        self.edges = self.address_space.allocate("col_idx", edge_bytes)
        self.nodes = self.address_space.allocate("row_offsets", node_bytes)

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        iterations = self.scaled(self.iterations_per_wavefront)
        node_elements = self.nodes.size // INT
        edge_elements = self.edges.size // INT
        span_elements = self.edge_span_pages * 4096 // INT
        # Consecutive gathers advance a fraction of a span: mostly the
        # same pages as the previous step (CSR edge lists of consecutive
        # frontier nodes are contiguous), so translations almost always
        # hit the TLBs — the paper's "regular" behaviour.
        advance = max(1, span_elements // 4)
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            rng = random.Random(f"{self.seed}:{self.abbrev}:{wavefront_index}")
            stream: WavefrontTrace = []
            node_cursor = (wavefront_index * wavefront_size * iterations) % (
                node_elements - wavefront_size * (iterations + 1)
            )
            edge_cursor = (
                wavefront_index * edge_elements // max(1, num_wavefronts)
            ) % max(1, edge_elements - span_elements - iterations * advance - 8)
            for step in range(iterations):
                # 1. Read row offsets for 64 consecutive frontier nodes.
                stream.append(
                    coalesced(
                        self.nodes,
                        node_cursor + step * wavefront_size,
                        wavefront_size,
                        INT,
                    )
                )
                # 2. Gather the nodes' edge lists: a short contiguous run
                # of the edge array, with small per-lane jitter.
                addresses = [
                    self.edges.element(
                        edge_cursor
                        + (lane * span_elements) // wavefront_size
                        + rng.randrange(8),
                        INT,
                    )
                    for lane in range(wavefront_size)
                ]
                stream.append(addresses)
                edge_cursor += advance
            trace.append(stream)
        return trace


class SSSP(_CSRGraphWorkload):
    """Single-source shortest paths."""

    abbrev = "SSP"
    name = "SSSP"
    description = "Shortest path search algorithm"
    nominal_footprint_mb = 104.32
    irregular = False
    suite = "Pannotia"
    footprint_mb = 104.32


class MIS(_CSRGraphWorkload):
    """Maximal independent set."""

    abbrev = "MIS"
    name = "MIS"
    description = "Maximal subset search algorithm"
    nominal_footprint_mb = 72.38
    irregular = False
    suite = "Pannotia"
    footprint_mb = 72.38


class Color(_CSRGraphWorkload):
    """Graph colouring."""

    abbrev = "CLR"
    name = "Color"
    description = "Graph coloring algorithm"
    nominal_footprint_mb = 26.68
    irregular = False
    suite = "Pannotia"
    footprint_mb = 26.68
