"""Trace serialisation: save and reload generated instruction traces.

Traces are what the simulator actually consumes (the generators are just
convenient factories), so persisting them enables (a) byte-identical
re-runs across machines and library versions, (b) sharing inputs between
collaborators without sharing generator code, and (c) feeding the
simulator traces captured elsewhere.

Format: a compact JSON envelope with delta-encoded addresses::

    {"format": "repro-trace", "version": 1,
     "meta": {...},
     "wavefronts": [[[base, delta, delta, ...], ...], ...]}

Each instruction stores its first lane address followed by lane-to-lane
deltas, which keeps coalesced instructions (deltas of 4 or 8) small on
disk while remaining human-inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.workloads.base import Trace

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


def _encode_instruction(addresses: List[int]) -> List[int]:
    if not addresses:
        return []
    encoded = [addresses[0]]
    previous = addresses[0]
    for address in addresses[1:]:
        encoded.append(address - previous)
        previous = address
    return encoded


def _decode_instruction(encoded: List[int]) -> List[int]:
    if not encoded:
        return []
    addresses = [encoded[0]]
    for delta in encoded[1:]:
        addresses.append(addresses[-1] + delta)
    return addresses


def save_trace(
    trace: Trace,
    path: Union[str, Path],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write ``trace`` to ``path`` as versioned JSON."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": meta or {},
        "wavefronts": [
            [_encode_instruction(instruction) for instruction in stream]
            for stream in trace
        ],
    }
    Path(path).write_text(json.dumps(document, separators=(",", ":")))


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"{path} is not a {FORMAT_NAME} file")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {document.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return [
        [_decode_instruction(instruction) for instruction in stream]
        for stream in document["wavefronts"]
    ]


def load_meta(path: Union[str, Path]) -> Dict[str, object]:
    """Read only the metadata block of a saved trace."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"{path} is not a {FORMAT_NAME} file")
    return dict(document.get("meta", {}))
