"""The workload registry: Table II of the paper, by abbreviation.

Order matches the paper's figures: the six irregular applications first
(XSB MVT ATX NW BIC GEV), then the six regular ones (SSP MIS CLR BCK
KMN HOT).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.workloads.base import Workload
from repro.workloads.pannotia import MIS, SSSP, Color
from repro.workloads.polybench import ATAX, BICG, GESUMMV, MVT
from repro.workloads.rodinia import NW, BackProp, Hotspot, KMeans
from repro.workloads.xsbench import XSBench

#: Paper figure order for the irregular group.
IRREGULAR_WORKLOADS: Tuple[str, ...] = ("XSB", "MVT", "ATX", "NW", "BIC", "GEV")
#: Paper figure order for the regular group.
REGULAR_WORKLOADS: Tuple[str, ...] = ("SSP", "MIS", "CLR", "BCK", "KMN", "HOT")

_REGISTRY: Dict[str, Type[Workload]] = {
    cls.abbrev: cls
    for cls in (
        XSBench,
        MVT,
        ATAX,
        NW,
        BICG,
        GESUMMV,
        SSSP,
        MIS,
        Color,
        BackProp,
        KMeans,
        Hotspot,
    )
}


def workload_names() -> List[str]:
    """All abbreviations, irregular group first (paper order)."""
    return list(IRREGULAR_WORKLOADS + REGULAR_WORKLOADS)


def get_workload(abbrev: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate a benchmark model by its Table II abbreviation."""
    try:
        cls = _REGISTRY[abbrev.upper()]
    except KeyError:
        raise ValueError(
            f"unknown workload {abbrev!r}; available: {', '.join(workload_names())}"
        ) from None
    return cls(scale=scale, seed=seed)


def all_workloads(scale: float = 1.0, seed: int = 0) -> List[Workload]:
    """Instantiate every benchmark, in paper order."""
    return [get_workload(name, scale=scale, seed=seed) for name in workload_names()]
