"""Reusable access-pattern building blocks plus a parametric workload.

The benchmark models compose three primitive SIMD access shapes:

``coalesced``  — all lanes on consecutive elements (one or two pages);
``row_strided`` — lane *l* at ``base + (l * row_stride) + offset`` —
                  the one-workitem-per-row pattern that makes Polybench
                  kernels fully divergent when rows exceed a page;
``random``     — each lane at an independent uniform element (XSBench).

:class:`ParametricWorkload` exposes divergence directly (pages touched
per instruction) and is used by tests, examples and ablation benches to
sweep divergence without pretending to be a specific benchmark.
"""

from __future__ import annotations

import random
from typing import List

from repro.workloads.base import (
    LaneAddresses,
    MemoryRegion,
    Trace,
    WavefrontTrace,
    Workload,
)


def coalesced(
    region: MemoryRegion, start_element: int, lanes: int, element_size: int = 8
) -> LaneAddresses:
    """All lanes access consecutive elements from ``start_element``."""
    return [
        region.element(start_element + lane, element_size) for lane in range(lanes)
    ]


def row_strided(
    region: MemoryRegion,
    first_row: int,
    row_elements: int,
    column: int,
    lanes: int,
    element_size: int = 8,
) -> LaneAddresses:
    """Lane ``l`` accesses ``array[first_row + l][column]`` (row-major).

    With ``row_elements * element_size`` ≥ one page, every lane lands on
    a distinct page: the fully divergent case.
    """
    return [
        region.element((first_row + lane) * row_elements + column, element_size)
        for lane in range(lanes)
    ]


def random_lanes(
    region: MemoryRegion,
    rng: random.Random,
    lanes: int,
    element_size: int = 8,
) -> LaneAddresses:
    """Each lane accesses an independent uniformly-random element."""
    max_element = region.size // element_size
    return [
        region.element(rng.randrange(max_element), element_size)
        for _ in range(lanes)
    ]


class ParametricWorkload(Workload):
    """A tunable micro-workload: divergence and reuse as dials.

    ``pages_per_instruction`` controls how many distinct pages each SIMD
    instruction touches (1 = perfectly coalesced, 64 = fully divergent);
    ``reuse_window`` makes consecutive instructions revisit the same pages
    for that many instructions before moving on (temporal locality).
    """

    abbrev = "SYN"
    name = "Synthetic"
    description = "Parametric divergence/locality micro-workload"
    nominal_footprint_mb = 64.0
    irregular = True
    suite = "synthetic"

    def __init__(
        self,
        pages_per_instruction: int = 16,
        instructions_per_wavefront: int = 32,
        reuse_window: int = 4,
        footprint_mb: float = 64.0,
        pages_pattern=None,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if pages_per_instruction < 1:
            raise ValueError("pages_per_instruction must be >= 1")
        if reuse_window < 1:
            raise ValueError("reuse_window must be >= 1")
        if pages_pattern is not None:
            if not pages_pattern or any(p < 1 for p in pages_pattern):
                raise ValueError("pages_pattern entries must be >= 1")
        self.pages_per_instruction = pages_per_instruction
        self.instructions_per_wavefront = instructions_per_wavefront
        self.reuse_window = reuse_window
        self.footprint_mb = footprint_mb
        #: Optional per-instruction divergence cycle, e.g. ``[1, 1, 64]``
        #: makes every third instruction fully divergent (bimodal work —
        #: the structure shortest-job-first exploits).  Overrides
        #: ``pages_per_instruction`` when given.
        self.pages_pattern = list(pages_pattern) if pages_pattern else None
        super().__init__(scale=scale, seed=seed)

    def _layout(self) -> None:
        self.data = self.address_space.allocate(
            "data", int(self.footprint_mb * 1024 * 1024)
        )

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        rng = random.Random(self.seed)
        total_pages = self.data.pages
        trace: Trace = []
        instructions = self.scaled(self.instructions_per_wavefront)
        for _ in range(num_wavefronts):
            wavefront: WavefrontTrace = []
            current_pages: List[int] = []
            for step in range(instructions):
                if self.pages_pattern is not None:
                    pages_now = self.pages_pattern[step % len(self.pages_pattern)]
                else:
                    pages_now = self.pages_per_instruction
                refresh = step % self.reuse_window == 0
                if refresh or pages_now > len(current_pages):
                    current_pages = [
                        rng.randrange(total_pages) for _ in range(pages_now)
                    ]
                # A narrower instruction revisits a subset of the current
                # working set (temporal locality): it hits the TLBs iff
                # the wide instruction's translations survived.
                visible = current_pages[:pages_now]
                addresses: LaneAddresses = []
                for lane in range(wavefront_size):
                    page = visible[lane % len(visible)]
                    offset = (lane * 64) % 4096
                    addresses.append(self.data.base + page * 4096 + offset)
                wavefront.append(addresses)
            trace.append(wavefront)
        return trace
