"""Polybench-GPU benchmark models: MVT, ATAX, BICG, GESUMMV.

All four are dense linear-algebra kernels whose GPU ports assign *one
workitem per matrix row*.  A row of a large row-major matrix spans many
pages, so a SIMD instruction in the row-dot-product loop makes its 64
lanes touch 64 *distinct* pages — the fully divergent pattern the paper
identifies as the address-translation bottleneck.  Their transposed
companion kernels (and vector reads) are unit-stride and coalesce
perfectly, which produces the bimodal work distribution of the paper's
Fig 3.

Matrix dimensions are chosen so the modelled footprints match the
paper's Table II: MVT 128.14 MB, ATAX 64.06 MB, BICG 128.11 MB,
GESUMMV 128.06 MB.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import MemoryRegion, Trace, WavefrontTrace, Workload
from repro.workloads.synthetic import coalesced, row_strided

DOUBLE = 8


class _RowDotWorkload(Workload):
    """Shared machinery for one-workitem-per-row matrix-vector kernels.

    Subclasses configure matrices and phase structure.  Each wavefront
    owns a block of 64 consecutive rows and sweeps the column index;
    the sweep samples ``divergent_steps`` column positions per wavefront
    (scaled), which preserves the per-page revisit ratio of the real
    ~N-iteration loop at a fraction of the simulation cost.
    """

    n: int = 4096
    #: Column positions sampled per wavefront in divergent phases.
    divergent_steps: int = 24
    #: Coalesced (transposed-kernel / vector) instructions interleaved
    #: per divergent step.
    coalesced_per_step: int = 1

    @property
    def lda(self) -> int:
        """Leading dimension: rows padded to a whole number of pages.

        GPU BLAS kernels pad matrix rows for alignment and bank conflicts;
        page-aligned rows also make all 64 lanes of the row-dot loop cross
        page boundaries at the *same* column, which produces the strongly
        bimodal translation-work distribution of the paper's Fig 3
        (many nearly-free steps, periodic 64-walk steps).
        """
        elements_per_page = 4096 // DOUBLE
        return ((self.n + elements_per_page - 1) // elements_per_page) * (
            elements_per_page
        )

    def _matrix(self, name: str) -> MemoryRegion:
        return self.address_space.allocate(name, self.n * self.lda * DOUBLE)

    def _vector(self, name: str) -> MemoryRegion:
        return self.address_space.allocate(name, self.n * DOUBLE)

    def _divergent_matrices(self) -> List[MemoryRegion]:
        """The matrices read row-per-workitem each step (1 or 2)."""
        raise NotImplementedError

    def _coalesced_region(self) -> MemoryRegion:
        """The region streamed by the coalesced companion accesses."""
        raise NotImplementedError

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        """Generate per-wavefront instruction streams (see Workload)."""
        steps = self.scaled(self.divergent_steps)
        column_stride = max(1, self.n // steps)
        matrices = self._divergent_matrices()
        vector = self._coalesced_region()
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            first_row = (wavefront_index * wavefront_size) % max(
                1, self.n - wavefront_size
            )
            # A seed-dependent column phase (shared by all wavefronts:
            # the kernels launch together and sweep columns in near
            # lockstep, so their page-boundary crossings are naturally
            # synchronised).  Different seeds shift the sweep, producing
            # genuinely different traces for stability studies.
            phase = (self.seed * 131) % column_stride
            stream: WavefrontTrace = []
            for step in range(steps):
                column = (step * column_stride + phase) % self.n
                for matrix in matrices:
                    stream.append(
                        row_strided(
                            matrix, first_row, self.lda, column, wavefront_size, DOUBLE
                        )
                    )
                for extra in range(self.coalesced_per_step):
                    start = (step * wavefront_size + extra) % max(
                        1, vector.size // DOUBLE - wavefront_size
                    )
                    stream.append(coalesced(vector, start, wavefront_size, DOUBLE))
            trace.append(stream)
        return trace


class MVT(_RowDotWorkload):
    """Matrix-vector product and transpose: x1 = A·y1; x2 = Aᵀ·y2."""

    abbrev = "MVT"
    name = "MVT"
    description = "Matrix vector product and transpose"
    nominal_footprint_mb = 128.14
    irregular = True
    suite = "Polybench"
    n = 4096

    def _layout(self) -> None:
        self.a = self._matrix("A")
        for vec in ("x1", "x2", "y1", "y2"):
            self._vector(vec)

    def _divergent_matrices(self) -> List[MemoryRegion]:
        return [self.a]

    def _coalesced_region(self) -> MemoryRegion:
        # The Aᵀ·y2 kernel reads A column-per-workitem: unit-stride across
        # lanes, i.e. perfectly coalesced over the same big matrix.
        return self.a


class ATAX(_RowDotWorkload):
    """ATAX: y = Aᵀ(A·x) — divergent A·x, coalesced Aᵀ pass."""

    abbrev = "ATX"
    name = "ATAX"
    description = "Matrix transpose and vector multiplication"
    nominal_footprint_mb = 64.06
    irregular = True
    suite = "Polybench"
    n = 2896

    def _layout(self) -> None:
        self.a = self._matrix("A")
        for vec in ("x", "y", "tmp"):
            self._vector(vec)

    def _divergent_matrices(self) -> List[MemoryRegion]:
        return [self.a]

    def _coalesced_region(self) -> MemoryRegion:
        return self.a


class BICG(_RowDotWorkload):
    """BiCGStab sub-kernel: q = A·p (divergent) and s = Aᵀ·r (coalesced)."""

    abbrev = "BIC"
    name = "BICG"
    description = "Sub kernel of BiCGStab linear solver"
    nominal_footprint_mb = 128.11
    irregular = True
    suite = "Polybench"
    n = 4096
    # BICG interleaves two vector streams (r and p) with its row sweep,
    # so it issues more coalesced companions per step than MVT.
    divergent_steps = 22
    coalesced_per_step = 2

    def _layout(self) -> None:
        self.a = self._matrix("A")
        for vec in ("p", "q", "r", "s"):
            self._vector(vec)

    def _divergent_matrices(self) -> List[MemoryRegion]:
        return [self.a]

    def _coalesced_region(self) -> MemoryRegion:
        return self.a


class GESUMMV(_RowDotWorkload):
    """GESUMMV: y = α·A·x + β·B·x — *two* divergent row sweeps per step.

    Touching two large matrices per loop iteration doubles the
    translation work per instruction pair, which is why GEV has the
    heaviest tail in the paper's Fig 3 (≈31% of instructions needing 65+
    page-walk memory accesses).
    """

    abbrev = "GEV"
    name = "GESUMMV"
    description = "Scalar, vector and matrix multiplication"
    nominal_footprint_mb = 128.06
    irregular = True
    suite = "Polybench"
    n = 2896
    coalesced_per_step = 1

    def _layout(self) -> None:
        self.a = self._matrix("A")
        self.b = self._matrix("B")
        for vec in ("x", "y", "tmp"):
            self._vector(vec)

    def _divergent_matrices(self) -> List[MemoryRegion]:
        return [self.a, self.b]

    def _coalesced_region(self) -> MemoryRegion:
        return self.address_space.regions["x"]
