# Developer conveniences for the repro package.

.PHONY: install test bench perf event-core figures figures-bench \
	paper-figures quicktest faults trace overhead fleet fleet-bench \
	bench-check checkpoint service chaos blame attrib-bench zoo clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

quicktest:
	pytest tests/ -x -q --ignore=tests/test_end_to_end.py

bench:
	pytest benchmarks/ --benchmark-only

perf:
	python benchmarks/perf/hotpath.py

event-core:
	python benchmarks/perf/event_core.py

faults:
	python -m repro faults --seed 2018 --runs 8 --jobs 2 --timeout 300

trace:
	python -m repro trace mvt --scale 0.2 --out trace.json --jsonl trace.jsonl

overhead:
	python benchmarks/perf/tracing_overhead.py

fleet:
	python -m repro fleet-report --workloads MVT,XSB --schedulers fcfs,simt \
		--seeds 2 --jobs 2 --progress --fleet-log fleet.jsonl \
		--out fleet_report.json --markdown fleet_report.md

fleet-bench:
	python benchmarks/perf/fleet_overhead.py

bench-check:
	python -m repro bench-check

# Scheduler-zoo comparison: WaSP/IRU/Mosaic vs the paper's policies
# plus the SMS DRAM controller, written to BENCH_zoo.json for the
# regression gate.
zoo:
	python benchmarks/perf/zoo.py

# Checkpoint/resume round trip: run with periodic state dumps, then
# resume the leftover mid-run checkpoint — both prints must agree.
checkpoint:
	python -m repro run mvt --scale 0.2 --wavefronts 16 \
		--checkpoint-every 5000 --checkpoint-path mvt.ckpt
	python -m repro resume mvt.ckpt

# Durable work-queue campaign: shard, drain with local workers, merge.
service:
	rm -rf campaign
	python -m repro service init campaign --workloads MVT,XSB \
		--schedulers fcfs,simt --seeds 2
	python -m repro service run campaign --workers 2
	python -m repro service status campaign

# The chaos gate: SIGKILL workers mid-spec plus a full-restart drill;
# fails unless the merged report is byte-identical to the serial run.
chaos:
	rm -rf chaos-campaign
	python -m repro service chaos chaos-campaign --seed 2018 --workers 2

# Text renderings of the paper tables/figures (quick terminal check).
paper-figures:
	python -m repro figure table1
	python -m repro figure table2
	python -m repro figure fig8

# The figure/report pipeline: tiny metrics campaign -> Vega-Lite specs,
# CSVs, and the self-contained HTML campaign report.
figures:
	rm -rf figures-campaign
	python -m repro service init figures-campaign --workloads MVT,XSB \
		--schedulers fcfs,simt --seeds 2 --metrics
	python -m repro service run figures-campaign --workers 2
	python -m repro figures figures-campaign
	@echo "open figures-campaign/report/campaign_report.html"

figures-bench:
	python benchmarks/perf/figures_pipeline.py

# Walk-latency blame: trace a small sweep, attribute every walk's
# cycles to pipeline stages, and write the merged report.  Exits
# nonzero if any walk's stages fail to sum to its end-to-end latency.
blame:
	python -m repro blame --workloads MVT,XSB --schedulers fcfs,simt \
		--seeds 2 --jobs 2 --out blame_report.json

attrib-bench:
	python benchmarks/perf/attrib_overhead.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
